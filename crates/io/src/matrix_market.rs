//! MatrixMarket coordinate format (`%%MatrixMarket matrix coordinate …`).
//!
//! Supports `real`/`integer`/`pattern` fields and `general`/`symmetric`
//! symmetry. Indices are 1-based on disk, 0-based in memory. Symmetric
//! inputs are expanded to both directions on read (the convention graph
//! frameworks use).

use std::io::{BufRead, Write};

use essentials_graph::{Coo, VertexId};

use crate::IoError;

/// Symmetry declared in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// Every entry listed explicitly.
    General,
    /// Lower triangle listed; the reader mirrors entries.
    Symmetric,
}

/// Parsed header of a MatrixMarket file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmHeader {
    /// Rows (graph vertices; must equal `cols` for adjacency use).
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Entries listed in the file.
    pub entries: usize,
    /// Declared symmetry.
    pub symmetry: MmSymmetry,
    /// True if the field is `pattern` (no values on data lines).
    pub pattern: bool,
}

/// Reads a coordinate MatrixMarket stream into a weighted edge list
/// (pattern entries get weight 1.0). Returns the header alongside.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<(Coo<f32>, MmHeader), IoError> {
    let mut lines = reader.lines().enumerate();
    let banner = lines
        .next()
        .ok_or_else(|| IoError::Parse("empty file".into()))?
        .1?;
    let lower = banner.to_ascii_lowercase();
    let toks: Vec<&str> = lower.split_whitespace().collect();
    if toks.len() < 5 || !toks[0].starts_with("%%matrixmarket") || toks[1] != "matrix" {
        return Err(IoError::Parse(format!("bad banner: {banner}")));
    }
    if toks[2] != "coordinate" {
        return Err(IoError::Parse(format!(
            "only coordinate format is supported, got {}",
            toks[2]
        )));
    }
    let pattern = match toks[3] {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(IoError::Parse(format!("unsupported field type {other}")));
        }
    };
    let symmetry = match toks[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(IoError::Parse(format!("unsupported symmetry {other}")));
        }
    };

    // Size line: first non-comment line. Line numbers in errors are
    // 1-based, matching what editors and `head -n` show.
    let (size_lineno, size_line) = loop {
        let (no, line) = lines
            .next()
            .ok_or_else(|| IoError::Parse("missing size line".into()))?;
        let line = line?;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break (no + 1, line);
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| {
            IoError::Parse(format!(
                "line {size_lineno}: bad size line '{size_line}': {e}"
            ))
        })?;
    if dims.len() != 3 {
        return Err(IoError::Parse(format!(
            "line {size_lineno}: size line needs 3 numbers: {size_line}"
        )));
    }
    let (rows, cols, entries) = (dims[0], dims[1], dims[2]);
    let n = rows.max(cols);
    let mut coo = Coo::new(n);
    let mut seen = 0usize;
    for (no, line) in lines {
        let line = line?;
        let lineno = no + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = parse_tok(it.next(), lineno, t)?;
        let c: usize = parse_tok(it.next(), lineno, t)?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(IoError::Parse(format!(
                "line {lineno}: index out of range: {t}"
            )));
        }
        let w: f32 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| IoError::Parse(format!("line {lineno}: missing value: {t}")))?
                .parse()
                .map_err(|e| IoError::Parse(format!("line {lineno}: bad value in '{t}': {e}")))?
        };
        if w.is_nan() {
            return Err(IoError::Parse(format!("line {lineno}: NaN value: {t}")));
        }
        let (src, dst) = ((r - 1) as VertexId, (c - 1) as VertexId);
        coo.push(src, dst, w);
        if symmetry == MmSymmetry::Symmetric && src != dst {
            coo.push(dst, src, w);
        }
        seen += 1;
    }
    if seen != entries {
        return Err(IoError::Parse(format!(
            "header declared {entries} entries, file had {seen}"
        )));
    }
    Ok((
        coo,
        MmHeader {
            rows,
            cols,
            entries,
            symmetry,
            pattern,
        },
    ))
}

fn parse_tok(tok: Option<&str>, lineno: usize, line: &str) -> Result<usize, IoError> {
    tok.ok_or_else(|| IoError::Parse(format!("line {lineno}: truncated line: {line}")))?
        .parse()
        .map_err(|e| IoError::Parse(format!("line {lineno}: bad index in '{line}': {e}")))
}

/// Writes an edge list as a general real coordinate MatrixMarket file.
pub fn write_matrix_market<W: Write>(mut w: W, coo: &Coo<f32>) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by essentials-rs")?;
    writeln!(
        w,
        "{} {} {}",
        coo.num_vertices(),
        coo.num_vertices(),
        coo.num_edges()
    )?;
    for (s, d, v) in coo.iter() {
        writeln!(w, "{} {} {}", s + 1, d + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_graph() {
        let coo = Coo::from_edges(4, [(0, 1, 1.5f32), (2, 3, 2.5), (3, 3, 0.5)]);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &coo).unwrap();
        let (back, header) = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, coo);
        assert_eq!(header.entries, 3);
        assert_eq!(header.symmetry, MmSymmetry::General);
    }

    #[test]
    fn pattern_entries_get_unit_weight() {
        let input = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let (coo, header) = read_matrix_market(input.as_bytes()).unwrap();
        assert!(header.pattern);
        assert_eq!(coo.iter().next().unwrap(), (0, 1, 1.0));
    }

    #[test]
    fn symmetric_entries_are_mirrored_except_diagonal() {
        let input = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5.0\n3 3 1.0\n";
        let (coo, _) = read_matrix_market(input.as_bytes()).unwrap();
        let edges: Vec<_> = coo.iter().collect();
        assert_eq!(edges, vec![(1, 0, 5.0), (0, 1, 5.0), (2, 2, 1.0)]);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input =
            "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n% mid\n1 1 3.0\n";
        let (coo, _) = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(coo.num_edges(), 1);
    }

    #[test]
    fn errors_are_informative() {
        let bad_banner = "not a banner\n1 1 0\n";
        assert!(matches!(
            read_matrix_market(bad_banner.as_bytes()),
            Err(IoError::Parse(_))
        ));
        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_matrix_market(wrong_count.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2"));
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        // Banner is line 1, size line 2; the bad entry sits on line 4.
        let input = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n1 2 bogus\n";
        let err = read_matrix_market(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
        let bad_size = "%%MatrixMarket matrix coordinate real general\n% note\ntwo 2 1\n";
        let err = read_matrix_market(bad_size.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn rectangular_sizes_use_max_dimension() {
        let input = "%%MatrixMarket matrix coordinate real general\n2 5 1\n1 5 1.0\n";
        let (coo, _) = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(coo.num_vertices(), 5);
    }
}
