//! `essentials-io` — graph ingestion and persistence.
//!
//! Three formats:
//! * [`matrix_market`] — the MatrixMarket coordinate format every sparse
//!   collection (SuiteSparse, Graph500 reference inputs) ships in; the
//!   sandbox has no network, so the readers are exercised on round-trips
//!   of generated graphs, and real datasets drop in unchanged;
//! * [`edge_list`] — whitespace-separated `src dst [weight]` text, the de
//!   facto SNAP format;
//! * [`binary`] — a compact CSR snapshot (little-endian binary) for fast reload
//!   of large generated workloads between bench runs.

#![warn(missing_docs)]

pub mod binary;
pub mod edge_list;
pub mod matrix_market;
pub mod mmap;

pub use binary::{read_binary, write_binary, write_compressed_binary};
pub use edge_list::{read_edge_list, write_edge_list};
pub use matrix_market::{read_matrix_market, write_matrix_market, MmHeader, MmSymmetry};
pub use mmap::{CompressedContainer, ContainerWeight};

/// Errors surfaced by readers.
///
/// The binary-container variants are *typed* (rather than message strings)
/// so the mmap loader's callers can distinguish "not one of our files"
/// from "our file, damaged" — the text formats keep the line-numbered
/// [`IoError::Parse`] messages.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the format; the message says where and why.
    Parse(String),
    /// The file does not start with the expected magic — a foreign file,
    /// not a damaged one of ours.
    Foreign {
        /// The magic the reader expected.
        expected: &'static str,
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// Recognized magic but a version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ends before the named section is complete. `offset` is
    /// the byte position where the read stopped — the binary analog of
    /// the text readers' line numbers.
    Truncated {
        /// Which section the reader was consuming.
        what: &'static str,
        /// Byte offset at which the data ran out.
        offset: usize,
    },
    /// The footer checksum does not match the content — bit rot or a
    /// partial overwrite that kept the right length.
    Checksum {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum recomputed over the content.
        actual: u64,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
            IoError::Foreign { expected, found } => {
                write!(f, "not a {expected} file (magic bytes {found:?})")
            }
            IoError::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            IoError::Truncated { what, offset } => {
                write!(f, "truncated at byte {offset} while reading {what}")
            }
            IoError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: footer {expected:#018x}, content {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
