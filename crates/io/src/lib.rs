//! `essentials-io` — graph ingestion and persistence.
//!
//! Three formats:
//! * [`matrix_market`] — the MatrixMarket coordinate format every sparse
//!   collection (SuiteSparse, Graph500 reference inputs) ships in; the
//!   sandbox has no network, so the readers are exercised on round-trips
//!   of generated graphs, and real datasets drop in unchanged;
//! * [`edge_list`] — whitespace-separated `src dst [weight]` text, the de
//!   facto SNAP format;
//! * [`binary`] — a compact CSR snapshot (little-endian binary) for fast reload
//!   of large generated workloads between bench runs.

#![warn(missing_docs)]

pub mod binary;
pub mod edge_list;
pub mod matrix_market;

pub use binary::{read_binary, write_binary};
pub use edge_list::{read_edge_list, write_edge_list};
pub use matrix_market::{read_matrix_market, write_matrix_market, MmHeader, MmSymmetry};

/// Errors surfaced by readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the format; the message says where and why.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}
