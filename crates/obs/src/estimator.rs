//! Per-class EWMA service-time estimation, fed by [`RequestEvent`]
//! telemetry.
//!
//! The serving engine's deadline-feasibility shedding (DESIGN.md §16)
//! needs one number per admission class: "how long does a request of this
//! class take right now?". The estimator keeps an exponentially weighted
//! moving average of observed service times (α = 1/8, the classic TCP RTT
//! smoothing constant: new = old − old/8 + sample/8), one per class, as
//! lock-free atomics — feeding it from the request path costs two relaxed
//! loads and one relaxed store, and reading a prediction costs one load.
//!
//! Only *completed* service feeds the average (outcome `"ok"` or
//! `"degraded"` with a nonzero service time). Shed and queue-rejected
//! requests report zero service and would drag the estimate toward zero,
//! creating an admit/shed oscillation; mid-run failures (panics, expired
//! deadlines) report *truncated* service and would bias the estimate low
//! exactly when the system is struggling. Skipping both keeps the
//! estimator conservative under stress, which is the safe direction for an
//! admission decision.

use crate::event::RequestEvent;
use std::sync::atomic::{AtomicU64, Ordering};

/// EWMA smoothing shift: α = 1/8 (`new = old - old/8 + sample/8`).
const EWMA_SHIFT: u32 = 3;

/// Per-class EWMA of request service times, in nanoseconds. Zero means "no
/// samples yet" — predictions are unavailable until the first completed
/// request of that class, so a cold engine never sheds.
#[derive(Debug, Default)]
pub struct ServiceEstimator {
    /// Smoothed light-class service time (ns); 0 = no samples.
    light_ns: AtomicU64,
    /// Smoothed heavy-class service time (ns); 0 = no samples.
    heavy_ns: AtomicU64,
}

impl ServiceEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one request event. Only completed service counts (see module
    /// docs); everything else is ignored.
    pub fn observe(&self, ev: &RequestEvent) {
        if ev.service_ns == 0 || !matches!(ev.outcome, "ok" | "degraded") {
            return;
        }
        self.record_class(ev.class, ev.service_ns);
    }

    /// Feeds one completed service time for a class label (`"light"` /
    /// `"heavy"`; other labels are ignored).
    pub fn record_class(&self, class: &str, service_ns: u64) {
        let cell = match class {
            "light" => &self.light_ns,
            "heavy" => &self.heavy_ns,
            _ => return,
        };
        // A racy read-modify-write: two concurrent updates may lose one
        // sample, which for a smoothed average of an ongoing stream is
        // noise, not corruption. The estimate is advisory by contract.
        let sample = service_ns.max(1);
        let old = cell.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - (old >> EWMA_SHIFT) + (sample >> EWMA_SHIFT)
        };
        cell.store(new.max(1), Ordering::Relaxed);
    }

    /// The smoothed service-time estimate for a class label, or `None`
    /// before the first sample (or for an unknown label).
    pub fn estimate_ns(&self, class: &str) -> Option<u64> {
        let cell = match class {
            "light" => &self.light_ns,
            "heavy" => &self.heavy_ns,
            _ => return None,
        };
        match cell.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// The largest per-class estimate available — the conservative
    /// "how long does *some* in-flight request hold a permit" number used
    /// to predict queue drain. `None` until any class has a sample.
    pub fn worst_case_ns(&self) -> Option<u64> {
        let l = self.light_ns.load(Ordering::Relaxed);
        let h = self.heavy_ns.load(Ordering::Relaxed);
        match l.max(h) {
            0 => None,
            ns => Some(ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(class: &'static str, outcome: &'static str, service_ns: u64) -> RequestEvent {
        RequestEvent {
            id: 0,
            class,
            kind: "bfs",
            outcome,
            queue_ns: 0,
            service_ns,
            scratch_key: 0,
        }
    }

    #[test]
    fn cold_estimator_predicts_nothing() {
        let e = ServiceEstimator::new();
        assert_eq!(e.estimate_ns("light"), None);
        assert_eq!(e.estimate_ns("heavy"), None);
        assert_eq!(e.worst_case_ns(), None);
    }

    #[test]
    fn first_sample_seeds_then_ewma_smooths() {
        let e = ServiceEstimator::new();
        e.observe(&ev("light", "ok", 8_000));
        assert_eq!(e.estimate_ns("light"), Some(8_000));
        // new = 8000 - 1000 + 2000 = 9000
        e.observe(&ev("light", "ok", 16_000));
        assert_eq!(e.estimate_ns("light"), Some(9_000));
        assert_eq!(e.estimate_ns("heavy"), None);
        assert_eq!(e.worst_case_ns(), Some(9_000));
    }

    #[test]
    fn classes_are_independent_and_worst_case_takes_the_max() {
        let e = ServiceEstimator::new();
        e.observe(&ev("light", "ok", 1_000));
        e.observe(&ev("heavy", "ok", 50_000));
        assert_eq!(e.estimate_ns("light"), Some(1_000));
        assert_eq!(e.estimate_ns("heavy"), Some(50_000));
        assert_eq!(e.worst_case_ns(), Some(50_000));
    }

    #[test]
    fn degraded_feeds_but_failures_and_sheds_do_not() {
        let e = ServiceEstimator::new();
        e.observe(&ev("heavy", "degraded", 4_000));
        assert_eq!(e.estimate_ns("heavy"), Some(4_000));
        e.observe(&ev("heavy", "worker-panic", 1));
        e.observe(&ev("heavy", "deadline-expired", 1));
        e.observe(&ev("heavy", "shed", 0));
        e.observe(&ev("heavy", "ok", 0)); // zero service never feeds
        assert_eq!(e.estimate_ns("heavy"), Some(4_000));
    }

    #[test]
    fn unknown_class_labels_are_ignored() {
        let e = ServiceEstimator::new();
        e.record_class("medium", 5_000);
        assert_eq!(e.estimate_ns("medium"), None);
        assert_eq!(e.worst_case_ns(), None);
    }
}
