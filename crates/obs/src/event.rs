//! Event payloads emitted by the instrumentation hooks.
//!
//! Events are plain borrowed structs so producers (the operators in
//! `essentials-core`) build them on the stack with no allocation; sinks that
//! need ownership ([`crate::TraceSink`]) copy what they keep.

/// Which operator (or operator family) produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `neighbors_expand` — push expansion into a sparse frontier.
    Advance,
    /// `neighbors_expand_unique` — push expansion with fused dedup.
    AdvanceUnique,
    /// `expand_push_dense` — push expansion into a dense bitmap frontier.
    AdvanceDense,
    /// `expand_pull` / `expand_pull_counted` — pull-direction expansion.
    Pull,
    /// `expand_blocked_pull` — pull expansion routed through
    /// destination-binned propagation blocking.
    PullBlocked,
    /// `BlockedGather` — full-frontier gather with destination-binned
    /// propagation blocking.
    GatherBlocked,
    /// `advance_edges` — edge-frontier advance.
    AdvanceEdges,
    /// `filter` — predicate contraction.
    Filter,
    /// `uniquify` / `uniquify_with_bitmap` — duplicate elimination.
    Uniquify,
    /// `foreach_vertex` — vertex program over `0..n`.
    ForeachVertex,
    /// `foreach_active` — vertex program over a frontier.
    ForeachActive,
    /// `fill_indexed` — parallel property-array construction.
    FillIndexed,
}

impl OpKind {
    /// Stable lowercase name (used in JSONL output and summaries).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Advance => "advance",
            OpKind::AdvanceUnique => "advance_unique",
            OpKind::AdvanceDense => "advance_dense",
            OpKind::Pull => "pull",
            OpKind::PullBlocked => "pull_blocked",
            OpKind::GatherBlocked => "gather_blocked",
            OpKind::AdvanceEdges => "advance_edges",
            OpKind::Filter => "filter",
            OpKind::Uniquify => "uniquify",
            OpKind::ForeachVertex => "foreach_vertex",
            OpKind::ForeachActive => "foreach_active",
            OpKind::FillIndexed => "fill_indexed",
        }
    }
}

/// Which loop shape a span came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// `Enactor::run` — frontier-driven (converges on empty frontier).
    Frontier,
    /// `Enactor::run_until` — state-driven fixpoint loop.
    Fixpoint,
}

impl LoopKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            LoopKind::Frontier => "frontier",
            LoopKind::Fixpoint => "fixpoint",
        }
    }
}

/// One traversal-operator invocation (advance family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvanceEvent<'a> {
    /// Operator variant.
    pub kind: OpKind,
    /// Execution-policy name (`"seq"`, `"par"`, `"par_nosync"`).
    pub policy: &'static str,
    /// Input frontier size (active vertices or edges).
    pub frontier_in: usize,
    /// Edges the operator looked at (every condition evaluation for push;
    /// every in-edge scanned for pull).
    pub edges_inspected: u64,
    /// Edges whose condition returned `true`. Zero when the sink declined
    /// per-edge detail ([`crate::ObsSink::wants_op_detail`] == false).
    pub admitted: u64,
    /// Output frontier size (vertices actually pushed).
    pub output_len: usize,
    /// Admitted edges suppressed by the fused dedup bitmap
    /// (`admitted - output_len` for `AdvanceUnique`; 0 elsewhere).
    pub dedup_hits: u64,
    /// Per-worker push counts for load-balance skew. Empty when the path
    /// has no per-worker buffers (sequential, dense, pull) or the sink
    /// declined detail.
    pub per_worker: &'a [usize],
}

/// One contraction-operator invocation (filter / uniquify).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterEvent {
    /// Operator variant.
    pub kind: OpKind,
    /// Execution-policy name.
    pub policy: &'static str,
    /// Input frontier size.
    pub input_len: usize,
    /// Output frontier size; `input_len - output_len` vertices were dropped.
    pub output_len: usize,
}

/// One compute-operator invocation (vertex programs, property fills).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeEvent {
    /// Operator variant.
    pub kind: OpKind,
    /// Execution-policy name.
    pub policy: &'static str,
    /// Items (vertices / slots) processed.
    pub items: usize,
}

/// One enacted-loop iteration (superstep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterSpan {
    /// Iteration number, 0-based.
    pub iteration: usize,
    /// Wall time of the step closure in nanoseconds.
    pub wall_ns: u64,
    /// Frontier size entering the iteration (reported work size for
    /// fixpoint loops).
    pub frontier_in: usize,
    /// Frontier size leaving the iteration (reported work size for
    /// fixpoint loops).
    pub frontier_out: usize,
    /// Which loop shape produced the span.
    pub loop_kind: LoopKind,
}

/// An enacted loop stopped abnormally: a worker panicked, a run-budget
/// limit fired, or a convergence watchdog detected divergence. Emitted by
/// the enactor's fallible loops just before the typed error is returned,
/// so sinks see partial runs too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortEvent {
    /// Stable error-kind label (`"worker-panic"`, `"cancelled"`,
    /// `"deadline-expired"`, `"iteration-cap"`, `"diverged"`).
    pub kind: &'static str,
    /// Iteration at which the loop stopped (completed iterations).
    pub iteration: usize,
}

/// One served request's span, emitted by the serving engine when the
/// request leaves the system (completed, rejected, or failed). The queue
/// and service components are separated so saturation shows up as queue
/// growth, not as mysteriously slow algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestEvent {
    /// Engine-assigned request id (monotonic per engine).
    pub id: u64,
    /// Admission class label (`"light"` / `"heavy"`).
    pub class: &'static str,
    /// Request kind label (`"bfs"`, `"bfs-batch"`, `"pagerank"`, …).
    pub kind: &'static str,
    /// Outcome label: `"ok"`, `"degraded"` (a brownout run that returned a
    /// capped partial result), an [`crate::ObsSink::on_abort`]-style error
    /// kind (`"cancelled"`, `"deadline-expired"`, …), `"queue-deadline"`
    /// when the request never got past admission, or `"shed"` when the
    /// deadline-feasibility gate rejected it on arrival.
    pub outcome: &'static str,
    /// Nanoseconds spent waiting for an admission permit.
    pub queue_ns: u64,
    /// Nanoseconds spent executing (zero if never admitted).
    pub service_ns: u64,
    /// Key of the scratch-pool slot the request leased (`usize::MAX` if it
    /// never got one).
    pub scratch_key: usize,
}

/// One direction-optimizing traversal decision (Beamer α/β heuristic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionEvent {
    /// Iteration the decision applies to.
    pub iteration: usize,
    /// Frontier size at decision time.
    pub frontier_len: usize,
    /// Out-edges of the frontier (the α-side quantity; 0 when the frontier
    /// was dense and the β rule decided).
    pub frontier_edges: usize,
    /// Unexplored edges remaining (the α-side denominator).
    pub unexplored_edges: usize,
    /// Whether the frontier was still growing (push→pull precondition).
    pub growing: bool,
    /// `true` if the pull direction was chosen.
    pub pull: bool,
}
