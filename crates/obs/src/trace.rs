//! [`TraceSink`] — an append-only log of everything that happened.
//!
//! Unlike [`crate::CountersSink`] (which folds events into totals), the
//! trace keeps every event in order, so per-iteration behaviour — the
//! frontier growth curve, the push→pull switch point, operator mix — can be
//! exported ([`crate::write_jsonl`]) and inspected after the run.

use parking_lot::Mutex;

use crate::event::{
    AbortEvent, AdvanceEvent, ComputeEvent, DirectionEvent, FilterEvent, IterSpan, OpKind,
    RequestEvent,
};
use crate::sink::ObsSink;

/// One owned trace record. Borrowed event payloads are copied into owned
/// form at append time (the only allocation a [`TraceSink`] does per event).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An enacted-loop iteration (superstep) span.
    Iteration(IterSpan),
    /// A traversal-operator invocation.
    Advance {
        /// Operator variant.
        kind: OpKind,
        /// Execution-policy name.
        policy: &'static str,
        /// Input frontier size.
        frontier_in: usize,
        /// Edges inspected.
        edges_inspected: u64,
        /// Edges admitted by the condition.
        admitted: u64,
        /// Output frontier size.
        output_len: usize,
        /// Fused-dedup suppressions.
        dedup_hits: u64,
        /// Per-worker push counts (owned copy).
        per_worker: Vec<usize>,
    },
    /// A contraction-operator invocation.
    Filter(FilterEvent),
    /// A compute-operator invocation.
    Compute(ComputeEvent),
    /// A direction-optimizing switch decision.
    Direction(DirectionEvent),
    /// An abnormal loop stop (panic / budget / divergence).
    Abort(AbortEvent),
    /// A served request's span (queue wait + service time).
    Request(RequestEvent),
    /// A user-inserted label (phase boundaries in the harness).
    Mark(String),
}

/// Append-only event log behind a mutex. The lock is taken once per
/// *operator call* or *iteration* — never per edge — so contention is
/// negligible next to the work each event represents.
#[derive(Default)]
pub struct TraceSink {
    records: Mutex<Vec<Record>>,
}

impl TraceSink {
    /// An empty trace.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Appends a labelled marker (e.g. `"trial 3 start"`).
    pub fn mark(&self, label: impl Into<String>) {
        self.records.lock().push(Record::Mark(label.into()));
    }

    /// Copies the records collected so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().clone()
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Drops all records.
    pub fn clear(&self) {
        self.records.lock().clear();
    }

    /// Consumes the sink and returns the records without copying.
    pub fn into_records(self) -> Vec<Record> {
        self.records.into_inner()
    }
}

impl ObsSink for TraceSink {
    fn on_advance(&self, ev: &AdvanceEvent<'_>) {
        self.records.lock().push(Record::Advance {
            kind: ev.kind,
            policy: ev.policy,
            frontier_in: ev.frontier_in,
            edges_inspected: ev.edges_inspected,
            admitted: ev.admitted,
            output_len: ev.output_len,
            dedup_hits: ev.dedup_hits,
            per_worker: ev.per_worker.to_vec(),
        });
    }

    fn on_filter(&self, ev: &FilterEvent) {
        self.records.lock().push(Record::Filter(*ev));
    }

    fn on_compute(&self, ev: &ComputeEvent) {
        self.records.lock().push(Record::Compute(*ev));
    }

    fn on_iteration(&self, ev: &IterSpan) {
        self.records.lock().push(Record::Iteration(*ev));
    }

    fn on_direction(&self, ev: &DirectionEvent) {
        self.records.lock().push(Record::Direction(*ev));
    }

    fn on_abort(&self, ev: &AbortEvent) {
        self.records.lock().push(Record::Abort(*ev));
    }

    fn on_request(&self, ev: &RequestEvent) {
        self.records.lock().push(Record::Request(*ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LoopKind;

    #[test]
    fn trace_preserves_order_and_payloads() {
        let t = TraceSink::new();
        t.mark("start");
        t.on_advance(&AdvanceEvent {
            kind: OpKind::AdvanceUnique,
            policy: "par",
            frontier_in: 2,
            edges_inspected: 7,
            admitted: 3,
            output_len: 3,
            dedup_hits: 0,
            per_worker: &[2, 1],
        });
        t.on_iteration(&IterSpan {
            iteration: 0,
            wall_ns: 42,
            frontier_in: 2,
            frontier_out: 3,
            loop_kind: LoopKind::Frontier,
        });
        let recs = t.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], Record::Mark("start".into()));
        match &recs[1] {
            Record::Advance {
                edges_inspected,
                per_worker,
                ..
            } => {
                assert_eq!(*edges_inspected, 7);
                assert_eq!(per_worker, &vec![2, 1]);
            }
            other => panic!("expected advance, got {other:?}"),
        }
        match &recs[2] {
            Record::Iteration(span) => assert_eq!(span.wall_ns, 42),
            other => panic!("expected iteration, got {other:?}"),
        }
    }

    #[test]
    fn clear_and_into_records() {
        let t = TraceSink::new();
        t.mark("a");
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
        t.mark("b");
        assert_eq!(t.into_records(), vec![Record::Mark("b".into())]);
    }
}
