//! JSON-lines export of trace records.
//!
//! Hand-rolled serialization: every value we emit is a number, a `bool`, a
//! static identifier, or a user label, so a full JSON library would be dead
//! weight (and the build is offline — no new dependencies). Labels are
//! escaped per RFC 8259.

use std::io::{self, Write};

use crate::trace::Record;

/// Appends a JSON-escaped string literal (with quotes) to `out`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one record as a single JSON object (no trailing newline).
///
/// Every object carries a `"type"` discriminator:
/// `"iteration" | "advance" | "filter" | "compute" | "direction" | "abort" |
/// "request" | "mark"`.
pub fn record_to_json(rec: &Record) -> String {
    let mut s = String::with_capacity(128);
    match rec {
        Record::Iteration(span) => {
            s.push_str(&format!(
                "{{\"type\":\"iteration\",\"iteration\":{},\"wall_ns\":{},\"frontier_in\":{},\"frontier_out\":{},\"loop\":\"{}\"}}",
                span.iteration, span.wall_ns, span.frontier_in, span.frontier_out,
                span.loop_kind.name(),
            ));
        }
        Record::Advance {
            kind,
            policy,
            frontier_in,
            edges_inspected,
            admitted,
            output_len,
            dedup_hits,
            per_worker,
        } => {
            s.push_str(&format!(
                "{{\"type\":\"advance\",\"op\":\"{}\",\"policy\":\"{}\",\"frontier_in\":{},\"edges_inspected\":{},\"admitted\":{},\"output_len\":{},\"dedup_hits\":{},\"per_worker\":[",
                kind.name(), policy, frontier_in, edges_inspected, admitted, output_len,
                dedup_hits,
            ));
            for (i, n) in per_worker.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&n.to_string());
            }
            s.push_str("]}");
        }
        Record::Filter(ev) => {
            s.push_str(&format!(
                "{{\"type\":\"filter\",\"op\":\"{}\",\"policy\":\"{}\",\"input_len\":{},\"output_len\":{}}}",
                ev.kind.name(), ev.policy, ev.input_len, ev.output_len,
            ));
        }
        Record::Compute(ev) => {
            s.push_str(&format!(
                "{{\"type\":\"compute\",\"op\":\"{}\",\"policy\":\"{}\",\"items\":{}}}",
                ev.kind.name(),
                ev.policy,
                ev.items,
            ));
        }
        Record::Direction(ev) => {
            s.push_str(&format!(
                "{{\"type\":\"direction\",\"iteration\":{},\"frontier_len\":{},\"frontier_edges\":{},\"unexplored_edges\":{},\"growing\":{},\"pull\":{}}}",
                ev.iteration, ev.frontier_len, ev.frontier_edges, ev.unexplored_edges,
                ev.growing, ev.pull,
            ));
        }
        Record::Abort(ev) => {
            s.push_str(&format!(
                "{{\"type\":\"abort\",\"kind\":\"{}\",\"iteration\":{}}}",
                ev.kind, ev.iteration,
            ));
        }
        Record::Request(ev) => {
            s.push_str(&format!(
                "{{\"type\":\"request\",\"id\":{},\"class\":\"{}\",\"kind\":\"{}\",\"outcome\":\"{}\",\"queue_ns\":{},\"service_ns\":{},\"scratch_key\":{}}}",
                ev.id, ev.class, ev.kind, ev.outcome, ev.queue_ns, ev.service_ns,
                ev.scratch_key,
            ));
        }
        Record::Mark(label) => {
            s.push_str("{\"type\":\"mark\",\"label\":");
            push_json_str(&mut s, label);
            s.push('}');
        }
    }
    s
}

/// Writes the records as JSON lines — one object per record, newline
/// terminated — to `writer`.
pub fn write_jsonl<W: Write>(records: &[Record], writer: &mut W) -> io::Result<()> {
    for rec in records {
        writer.write_all(record_to_json(rec).as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComputeEvent, DirectionEvent, FilterEvent, IterSpan, LoopKind, OpKind};

    #[test]
    fn jsonl_one_object_per_line_with_type_tags() {
        let records = vec![
            Record::Mark("trial \"0\"\n".into()),
            Record::Iteration(IterSpan {
                iteration: 2,
                wall_ns: 12345,
                frontier_in: 10,
                frontier_out: 20,
                loop_kind: LoopKind::Frontier,
            }),
            Record::Advance {
                kind: OpKind::AdvanceUnique,
                policy: "par",
                frontier_in: 10,
                edges_inspected: 55,
                admitted: 21,
                output_len: 20,
                dedup_hits: 1,
                per_worker: vec![12, 8],
            },
            Record::Filter(FilterEvent {
                kind: OpKind::Filter,
                policy: "seq",
                input_len: 20,
                output_len: 15,
            }),
            Record::Compute(ComputeEvent {
                kind: OpKind::ForeachVertex,
                policy: "par",
                items: 100,
            }),
            Record::Direction(DirectionEvent {
                iteration: 3,
                frontier_len: 40,
                frontier_edges: 900,
                unexplored_edges: 1000,
                growing: true,
                pull: true,
            }),
        ];
        let mut buf = Vec::new();
        write_jsonl(&records, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len());
        assert_eq!(
            lines[0],
            "{\"type\":\"mark\",\"label\":\"trial \\\"0\\\"\\n\"}"
        );
        assert!(
            lines[1].contains("\"type\":\"iteration\"") && lines[1].contains("\"wall_ns\":12345")
        );
        assert!(
            lines[2].contains("\"op\":\"advance_unique\"")
                && lines[2].contains("\"per_worker\":[12,8]")
        );
        assert!(lines[3].contains("\"type\":\"filter\"") && lines[3].contains("\"output_len\":15"));
        assert!(lines[4].contains("\"items\":100"));
        assert!(lines[5].contains("\"pull\":true") && lines[5].contains("\"growing\":true"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
