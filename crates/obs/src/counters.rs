//! [`CountersSink`] — relaxed atomic work counters.
//!
//! The machine-independent "work columns" of the bench harness: how many
//! edges an algorithm actually looked at, how many vertices it pushed, how
//! much the fused dedup saved, and how evenly the pushes spread over the
//! workers. All counters are relaxed atomics — totals are exact because
//! every hook call happens-before the reader joins the parallel region
//! (operators are bulk-synchronous or quiescence-terminated before they
//! emit).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::event::{AbortEvent, AdvanceEvent, ComputeEvent, FilterEvent, IterSpan};
use crate::sink::ObsSink;

/// One counter on its own cache line (the per-worker array is indexed by
/// concurrent workers; padding stops false sharing between neighbours).
#[repr(align(128))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Relaxed atomic totals over every event seen. Cheap to share
/// (`Arc<CountersSink>`) between the context and the reporting code.
pub struct CountersSink {
    edges_inspected: AtomicU64,
    edges_admitted: AtomicU64,
    vertices_pushed: AtomicU64,
    dedup_hits: AtomicU64,
    filter_drops: AtomicU64,
    compute_items: AtomicU64,
    advance_calls: AtomicU64,
    filter_calls: AtomicU64,
    compute_calls: AtomicU64,
    iterations: AtomicU64,
    aborts: AtomicU64,
    per_worker: Box<[PaddedU64]>,
}

/// A plain-value snapshot of a [`CountersSink`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterTotals {
    /// Edges the traversal operators looked at.
    pub edges_inspected: u64,
    /// Edges whose condition returned `true` (detail-dependent; 0 if no
    /// producer counted admissions).
    pub edges_admitted: u64,
    /// Vertices pushed into output frontiers.
    pub vertices_pushed: u64,
    /// Admitted edges suppressed by fused dedup.
    pub dedup_hits: u64,
    /// Vertices dropped by filter / uniquify operators.
    pub filter_drops: u64,
    /// Items processed by compute operators.
    pub compute_items: u64,
    /// Advance-family operator calls.
    pub advance_calls: u64,
    /// Filter-family operator calls.
    pub filter_calls: u64,
    /// Compute-family operator calls.
    pub compute_calls: u64,
    /// Enacted-loop iterations observed.
    pub iterations: u64,
    /// Abnormal loop stops observed (panic / budget / divergence).
    pub aborts: u64,
    /// Per-worker push counts (length = worker slots configured at
    /// construction).
    pub per_worker_pushes: Vec<u64>,
}

impl CounterTotals {
    /// Load-balance skew: the busiest worker's pushes relative to the mean
    /// over all workers that saw any work. `1.0` is perfectly balanced;
    /// `workers` is the worst case (one worker did everything). Returns
    /// `1.0` when nothing was pushed.
    pub fn skew_ratio(&self) -> f64 {
        let total: u64 = self.per_worker_pushes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.per_worker_pushes.iter().max().unwrap_or(&0);
        let mean = total as f64 / self.per_worker_pushes.len() as f64;
        max as f64 / mean
    }
}

impl CountersSink {
    /// A sink with `workers` per-worker push slots (events from higher
    /// worker ids fold into the last slot rather than being lost).
    pub fn new(workers: usize) -> Self {
        CountersSink {
            edges_inspected: AtomicU64::new(0),
            edges_admitted: AtomicU64::new(0),
            vertices_pushed: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            filter_drops: AtomicU64::new(0),
            compute_items: AtomicU64::new(0),
            advance_calls: AtomicU64::new(0),
            filter_calls: AtomicU64::new(0),
            compute_calls: AtomicU64::new(0),
            iterations: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            per_worker: (0..workers.max(1)).map(|_| PaddedU64::default()).collect(),
        }
    }

    /// Snapshots every counter into plain values.
    pub fn snapshot(&self) -> CounterTotals {
        CounterTotals {
            edges_inspected: self.edges_inspected.load(Ordering::Relaxed),
            edges_admitted: self.edges_admitted.load(Ordering::Relaxed),
            vertices_pushed: self.vertices_pushed.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            filter_drops: self.filter_drops.load(Ordering::Relaxed),
            compute_items: self.compute_items.load(Ordering::Relaxed),
            advance_calls: self.advance_calls.load(Ordering::Relaxed),
            filter_calls: self.filter_calls.load(Ordering::Relaxed),
            compute_calls: self.compute_calls.load(Ordering::Relaxed),
            iterations: self.iterations.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            per_worker_pushes: self
                .per_worker
                .iter()
                .map(|c| c.0.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Zeroes every counter (between harness runs).
    pub fn reset(&self) {
        self.edges_inspected.store(0, Ordering::Relaxed);
        self.edges_admitted.store(0, Ordering::Relaxed);
        self.vertices_pushed.store(0, Ordering::Relaxed);
        self.dedup_hits.store(0, Ordering::Relaxed);
        self.filter_drops.store(0, Ordering::Relaxed);
        self.compute_items.store(0, Ordering::Relaxed);
        self.advance_calls.store(0, Ordering::Relaxed);
        self.filter_calls.store(0, Ordering::Relaxed);
        self.compute_calls.store(0, Ordering::Relaxed);
        self.iterations.store(0, Ordering::Relaxed);
        self.aborts.store(0, Ordering::Relaxed);
        for c in self.per_worker.iter() {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

impl ObsSink for CountersSink {
    fn on_advance(&self, ev: &AdvanceEvent<'_>) {
        self.advance_calls.fetch_add(1, Ordering::Relaxed);
        self.edges_inspected
            .fetch_add(ev.edges_inspected, Ordering::Relaxed);
        self.edges_admitted
            .fetch_add(ev.admitted, Ordering::Relaxed);
        self.vertices_pushed
            .fetch_add(ev.output_len as u64, Ordering::Relaxed);
        self.dedup_hits.fetch_add(ev.dedup_hits, Ordering::Relaxed);
        let last = self.per_worker.len() - 1;
        for (tid, &n) in ev.per_worker.iter().enumerate() {
            if n > 0 {
                self.per_worker[tid.min(last)]
                    .0
                    .fetch_add(n as u64, Ordering::Relaxed);
            }
        }
    }

    fn on_filter(&self, ev: &FilterEvent) {
        self.filter_calls.fetch_add(1, Ordering::Relaxed);
        self.filter_drops.fetch_add(
            ev.input_len.saturating_sub(ev.output_len) as u64,
            Ordering::Relaxed,
        );
    }

    fn on_compute(&self, ev: &ComputeEvent) {
        self.compute_calls.fetch_add(1, Ordering::Relaxed);
        self.compute_items
            .fetch_add(ev.items as u64, Ordering::Relaxed);
    }

    fn on_iteration(&self, _ev: &IterSpan) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    fn on_abort(&self, _ev: &AbortEvent) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LoopKind, OpKind};

    fn advance(per_worker: &[usize]) -> AdvanceEvent<'_> {
        AdvanceEvent {
            kind: OpKind::AdvanceUnique,
            policy: "par",
            frontier_in: 4,
            edges_inspected: 100,
            admitted: 40,
            output_len: 30,
            dedup_hits: 10,
            per_worker,
        }
    }

    #[test]
    fn totals_accumulate_across_events() {
        let c = CountersSink::new(4);
        c.on_advance(&advance(&[10, 20, 0, 0]));
        c.on_advance(&advance(&[0, 0, 25, 5]));
        c.on_filter(&FilterEvent {
            kind: OpKind::Filter,
            policy: "par",
            input_len: 60,
            output_len: 45,
        });
        c.on_compute(&ComputeEvent {
            kind: OpKind::FillIndexed,
            policy: "par",
            items: 1000,
        });
        c.on_iteration(&IterSpan {
            iteration: 0,
            wall_ns: 1,
            frontier_in: 4,
            frontier_out: 30,
            loop_kind: LoopKind::Frontier,
        });
        let t = c.snapshot();
        assert_eq!(t.edges_inspected, 200);
        assert_eq!(t.edges_admitted, 80);
        assert_eq!(t.vertices_pushed, 60);
        assert_eq!(t.dedup_hits, 20);
        assert_eq!(t.filter_drops, 15);
        assert_eq!(t.compute_items, 1000);
        assert_eq!(t.advance_calls, 2);
        assert_eq!(t.iterations, 1);
        assert_eq!(t.per_worker_pushes, vec![10, 20, 25, 5]);
        assert_eq!(t.per_worker_pushes.iter().sum::<u64>(), t.vertices_pushed);
    }

    #[test]
    fn skew_ratio_reads_imbalance() {
        let even = CounterTotals {
            per_worker_pushes: vec![25, 25, 25, 25],
            ..CounterTotals::default()
        };
        assert!((even.skew_ratio() - 1.0).abs() < 1e-12);
        let lopsided = CounterTotals {
            per_worker_pushes: vec![100, 0, 0, 0],
            ..CounterTotals::default()
        };
        assert!((lopsided.skew_ratio() - 4.0).abs() < 1e-12);
        assert_eq!(CounterTotals::default().skew_ratio(), 1.0);
    }

    #[test]
    fn out_of_range_workers_fold_into_last_slot() {
        let c = CountersSink::new(2);
        c.on_advance(&advance(&[1, 2, 3, 4]));
        let t = c.snapshot();
        assert_eq!(t.per_worker_pushes, vec![1, 9]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = CountersSink::new(2);
        c.on_advance(&advance(&[5, 5]));
        c.reset();
        assert_eq!(
            c.snapshot(),
            CounterTotals {
                per_worker_pushes: vec![0, 0],
                ..CounterTotals::default()
            }
        );
    }
}
