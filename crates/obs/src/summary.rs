//! [`Summary`] — digest a trace into the numbers people actually compare.
//!
//! MTEPS (millions of traversed edges per second), load-balance skew, and
//! the iteration/direction profile, computed from a [`Record`] stream.

use crate::trace::Record;

/// Aggregate statistics over one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Iteration spans seen.
    pub iterations: usize,
    /// Total wall time across iteration spans, in nanoseconds.
    pub wall_ns: u64,
    /// Total edges inspected across advance records.
    pub edges_inspected: u64,
    /// Total vertices pushed (sum of advance output sizes).
    pub vertices_pushed: u64,
    /// Total fused-dedup suppressions.
    pub dedup_hits: u64,
    /// Advance-operator calls.
    pub advance_calls: usize,
    /// Direction decisions that chose the pull direction.
    pub pull_iterations: usize,
    /// Direction decisions seen (pull + push).
    pub direction_decisions: usize,
    /// Per-worker push totals (element-wise sum over advance records).
    pub per_worker_pushes: Vec<u64>,
}

impl Summary {
    /// Folds a record stream into a summary.
    pub fn from_records(records: &[Record]) -> Self {
        let mut s = Summary::default();
        for rec in records {
            match rec {
                Record::Iteration(span) => {
                    s.iterations += 1;
                    s.wall_ns += span.wall_ns;
                }
                Record::Advance {
                    edges_inspected,
                    output_len,
                    dedup_hits,
                    per_worker,
                    ..
                } => {
                    s.advance_calls += 1;
                    s.edges_inspected += edges_inspected;
                    s.vertices_pushed += *output_len as u64;
                    s.dedup_hits += dedup_hits;
                    if s.per_worker_pushes.len() < per_worker.len() {
                        s.per_worker_pushes.resize(per_worker.len(), 0);
                    }
                    for (slot, &n) in s.per_worker_pushes.iter_mut().zip(per_worker.iter()) {
                        *slot += n as u64;
                    }
                }
                Record::Filter(_)
                | Record::Compute(_)
                | Record::Mark(_)
                | Record::Abort(_)
                | Record::Request(_) => {}
                Record::Direction(ev) => {
                    s.direction_decisions += 1;
                    if ev.pull {
                        s.pull_iterations += 1;
                    }
                }
            }
        }
        s
    }

    /// Millions of traversed edges per second, from inspected edges over the
    /// summed iteration wall time. `0.0` when no time was recorded.
    pub fn mteps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        let secs = self.wall_ns as f64 / 1e9;
        self.edges_inspected as f64 / 1e6 / secs
    }

    /// Load-balance skew: busiest worker's pushes over the per-worker mean
    /// (`1.0` = balanced). `1.0` when no per-worker data was recorded.
    pub fn skew_ratio(&self) -> f64 {
        let total: u64 = self.per_worker_pushes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = *self.per_worker_pushes.iter().max().unwrap_or(&0);
        let mean = total as f64 / self.per_worker_pushes.len() as f64;
        max as f64 / mean
    }

    /// A compact human-readable rendering (used by `harness --obs`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("iterations        {:>12}\n", self.iterations));
        out.push_str(&format!(
            "wall time         {:>12.3} ms\n",
            self.wall_ns as f64 / 1e6
        ));
        out.push_str(&format!("edges inspected   {:>12}\n", self.edges_inspected));
        out.push_str(&format!("vertices pushed   {:>12}\n", self.vertices_pushed));
        out.push_str(&format!("dedup hits        {:>12}\n", self.dedup_hits));
        out.push_str(&format!("MTEPS             {:>12.2}\n", self.mteps()));
        out.push_str(&format!("skew ratio        {:>12.3}\n", self.skew_ratio()));
        if self.direction_decisions > 0 {
            out.push_str(&format!(
                "pull iterations   {:>9}/{:<3}\n",
                self.pull_iterations, self.direction_decisions
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DirectionEvent, IterSpan, LoopKind, OpKind};

    fn sample() -> Vec<Record> {
        vec![
            Record::Iteration(IterSpan {
                iteration: 0,
                wall_ns: 500_000,
                frontier_in: 1,
                frontier_out: 10,
                loop_kind: LoopKind::Frontier,
            }),
            Record::Iteration(IterSpan {
                iteration: 1,
                wall_ns: 500_000,
                frontier_in: 10,
                frontier_out: 0,
                loop_kind: LoopKind::Frontier,
            }),
            Record::Advance {
                kind: OpKind::AdvanceUnique,
                policy: "par",
                frontier_in: 1,
                edges_inspected: 600_000,
                admitted: 11,
                output_len: 10,
                dedup_hits: 1,
                per_worker: vec![6, 4],
            },
            Record::Advance {
                kind: OpKind::AdvanceUnique,
                policy: "par",
                frontier_in: 10,
                edges_inspected: 400_000,
                admitted: 0,
                output_len: 0,
                dedup_hits: 0,
                per_worker: vec![0, 0],
            },
            Record::Direction(DirectionEvent {
                iteration: 1,
                frontier_len: 10,
                frontier_edges: 40,
                unexplored_edges: 50,
                growing: true,
                pull: true,
            }),
        ]
    }

    #[test]
    fn summary_folds_spans_and_advances() {
        let s = Summary::from_records(&sample());
        assert_eq!(s.iterations, 2);
        assert_eq!(s.wall_ns, 1_000_000);
        assert_eq!(s.edges_inspected, 1_000_000);
        assert_eq!(s.vertices_pushed, 10);
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.advance_calls, 2);
        assert_eq!(s.pull_iterations, 1);
        assert_eq!(s.direction_decisions, 1);
        assert_eq!(s.per_worker_pushes, vec![6, 4]);
        // 1e6 edges in 1 ms = 1000 MTEPS.
        assert!((s.mteps() - 1000.0).abs() < 1e-9);
        // max 6 over mean 5.
        assert!((s.skew_ratio() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_benign() {
        let s = Summary::from_records(&[]);
        assert_eq!(s.mteps(), 0.0);
        assert_eq!(s.skew_ratio(), 1.0);
        assert!(s.render().contains("iterations"));
    }

    #[test]
    fn render_mentions_direction_only_when_present() {
        let with = Summary::from_records(&sample());
        assert!(with.render().contains("pull iterations"));
        let without = Summary::from_records(&sample()[..4]);
        assert!(!without.render().contains("pull iterations"));
    }
}
