//! `essentials-obs` — operator-level observability for essentials-rs.
//!
//! The paper's abstraction separates *what* an operator does from *how* it
//! executes (execution policies, push vs. pull, load balancing), but tuning
//! those choices — and hunting regressions in them — needs runtime evidence:
//! per-iteration edge counts, MTEPS, load-balance skew, direction-switch
//! decisions. Gunrock and GraphBLAST both ship such counters; this crate is
//! their essentials-rs equivalent.
//!
//! The design is a single [`ObsSink`] trait with three stock sinks:
//!
//! * [`NullSink`] — every hook is an empty default method and
//!   [`ObsSink::wants_op_detail`] returns `false`, so instrumented hot paths
//!   skip all bookkeeping. A context with no sink (the default) costs
//!   nothing at all; a context with `NullSink` costs one predictable branch
//!   per operator call. Neither allocates (proved by `tests/zero_alloc.rs`).
//! * [`CountersSink`] — relaxed atomic totals: edges inspected, vertices
//!   pushed, fused-dedup hits, filter drops, and per-worker push counts from
//!   which load-balance skew is derived. These are the machine-independent
//!   "work columns" of the bench harness.
//! * [`TraceSink`] — an append-only log of [`Record`]s: per-iteration spans
//!   (wall time, frontier in/out sizes), per-operator events, and
//!   direction-optimizing switch decisions. Exported as JSON lines
//!   ([`write_jsonl`]) and digestible into a [`Summary`] (MTEPS, skew
//!   ratio, iterations).
//!
//! Events flow from the instrumentation hooks in `essentials-core`
//! (`Context` carries an optional shared sink; `Enactor` and the operators
//! emit into it) — this crate deliberately depends on nothing above the
//! vendored `parking_lot`, so every layer of the stack can use it.

#![warn(missing_docs)]

pub mod counters;
pub mod estimator;
pub mod event;
pub mod export;
pub mod sink;
pub mod summary;
pub mod trace;

pub use counters::{CounterTotals, CountersSink};
pub use estimator::ServiceEstimator;
pub use event::{
    AbortEvent, AdvanceEvent, ComputeEvent, DirectionEvent, FilterEvent, IterSpan, LoopKind,
    OpKind, RequestEvent,
};
pub use export::write_jsonl;
pub use sink::{NullSink, ObsSink, TeeSink};
pub use summary::Summary;
pub use trace::{Record, TraceSink};
