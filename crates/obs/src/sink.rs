//! The [`ObsSink`] trait and the trivial sinks ([`NullSink`], [`TeeSink`]).

use std::sync::Arc;

use crate::event::{
    AbortEvent, AdvanceEvent, ComputeEvent, DirectionEvent, FilterEvent, IterSpan, RequestEvent,
};

/// Receiver for observability events.
///
/// Every hook has an empty default body, so a sink implements only what it
/// cares about. Implementations must be cheap and non-blocking — hooks are
/// called from inside algorithm loops (once per *operator call* or
/// *iteration*, never per edge) — and thread-safe: operators running on a
/// shared [`Context`](../essentials_core/context/struct.Context.html) may
/// emit concurrently.
///
/// ## Overhead contract
///
/// * No sink on the context: the instrumentation is a `None` check per
///   operator call — effectively free.
/// * A sink with [`wants_op_detail`](ObsSink::wants_op_detail) `== false`
///   ([`NullSink`]): operators skip per-edge admission counting and
///   per-worker tallies; the residual cost is one predictable branch per
///   admitted edge and one hook call (a no-op) per operator call. The
///   steady-state zero-allocation guarantee of the frontier pipeline is
///   preserved (`tests/zero_alloc.rs` proves it with `NullSink` installed).
/// * A detail-wanting sink: adds one relaxed atomic increment per admitted
///   edge plus O(workers) bookkeeping per operator call; may allocate.
pub trait ObsSink: Send + Sync {
    /// A traversal operator (advance family) completed.
    #[inline]
    fn on_advance(&self, _ev: &AdvanceEvent<'_>) {}

    /// A contraction operator (filter / uniquify) completed.
    #[inline]
    fn on_filter(&self, _ev: &FilterEvent) {}

    /// A compute operator (vertex program / fill) completed.
    #[inline]
    fn on_compute(&self, _ev: &ComputeEvent) {}

    /// An enacted-loop iteration completed.
    #[inline]
    fn on_iteration(&self, _ev: &IterSpan) {}

    /// A direction-optimizing traversal chose its direction.
    #[inline]
    fn on_direction(&self, _ev: &DirectionEvent) {}

    /// An enacted loop stopped abnormally (panic, budget, divergence).
    #[inline]
    fn on_abort(&self, _ev: &AbortEvent) {}

    /// A served request left the engine (completed, rejected, or failed).
    #[inline]
    fn on_request(&self, _ev: &RequestEvent) {}

    /// Whether producers should pay for per-edge admission counts and
    /// per-worker push tallies. Return `false` to keep instrumented hot
    /// paths at their uninstrumented cost.
    #[inline]
    fn wants_op_detail(&self) -> bool {
        true
    }
}

/// The disabled sink: every hook is a no-op and
/// [`wants_op_detail`](ObsSink::wants_op_detail) is `false`, so the
/// instrumentation compiles down to dead branches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ObsSink for NullSink {
    #[inline]
    fn wants_op_detail(&self) -> bool {
        false
    }
}

/// Fans every event out to several sinks (e.g. counters *and* a trace in
/// one harness run).
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Arc<dyn ObsSink>>,
}

impl TeeSink {
    /// An empty tee (events go nowhere until sinks are added).
    pub fn new() -> Self {
        TeeSink::default()
    }

    /// Adds a downstream sink.
    pub fn with(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl ObsSink for TeeSink {
    fn on_advance(&self, ev: &AdvanceEvent<'_>) {
        for s in &self.sinks {
            s.on_advance(ev);
        }
    }

    fn on_filter(&self, ev: &FilterEvent) {
        for s in &self.sinks {
            s.on_filter(ev);
        }
    }

    fn on_compute(&self, ev: &ComputeEvent) {
        for s in &self.sinks {
            s.on_compute(ev);
        }
    }

    fn on_iteration(&self, ev: &IterSpan) {
        for s in &self.sinks {
            s.on_iteration(ev);
        }
    }

    fn on_direction(&self, ev: &DirectionEvent) {
        for s in &self.sinks {
            s.on_direction(ev);
        }
    }

    fn on_abort(&self, ev: &AbortEvent) {
        for s in &self.sinks {
            s.on_abort(ev);
        }
    }

    fn on_request(&self, ev: &RequestEvent) {
        for s in &self.sinks {
            s.on_request(ev);
        }
    }

    fn wants_op_detail(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_op_detail())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use crate::CountersSink;

    #[test]
    fn null_sink_declines_detail() {
        assert!(!NullSink.wants_op_detail());
    }

    #[test]
    fn tee_fans_out_and_unions_detail() {
        let a = Arc::new(CountersSink::new(2));
        let b = Arc::new(CountersSink::new(2));
        let tee = TeeSink::new()
            .with(a.clone())
            .with(Arc::new(NullSink))
            .with(b.clone());
        assert!(tee.wants_op_detail());
        tee.on_advance(&AdvanceEvent {
            kind: OpKind::Advance,
            policy: "par",
            frontier_in: 3,
            edges_inspected: 10,
            admitted: 4,
            output_len: 4,
            dedup_hits: 0,
            per_worker: &[3, 1],
        });
        assert_eq!(a.snapshot().edges_inspected, 10);
        assert_eq!(b.snapshot().edges_inspected, 10);
        assert_eq!(a.snapshot().per_worker_pushes, vec![3, 1]);
    }

    #[test]
    fn null_only_tee_declines_detail() {
        let tee = TeeSink::new().with(Arc::new(NullSink));
        assert!(!tee.wants_op_detail());
    }
}
