//! Property-based tests for representation invariants.

use essentials_graph::{Coo, Csr, GraphBuilder, VertexId};
use proptest::prelude::*;

/// Strategy: a vertex count and a list of in-range edges with small weights.
fn arb_edge_list() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId, u32)>)> {
    (1usize..40).prop_flat_map(|n| {
        let edge = (0..n as VertexId, 0..n as VertexId, 0u32..100);
        (Just(n), prop::collection::vec(edge, 0..200))
    })
}

proptest! {
    #[test]
    fn coo_csr_round_trip_preserves_multiset((n, edges) in arb_edge_list()) {
        let coo = Coo::from_edges(n, edges.clone());
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.num_edges(), edges.len());
        let mut original: Vec<_> = edges;
        original.sort_unstable();
        let mut round_trip: Vec<_> = csr.to_coo().iter().collect();
        round_trip.sort_unstable();
        prop_assert_eq!(original, round_trip);
    }

    #[test]
    fn transpose_is_an_involution((n, edges) in arb_edge_list()) {
        let csr = Csr::from_coo(&Coo::from_edges(n, edges));
        prop_assert_eq!(&csr.transposed().transposed(), &csr);
    }

    #[test]
    fn transpose_preserves_edge_count_and_swaps_degrees((n, edges) in arb_edge_list()) {
        let csr = Csr::from_coo(&Coo::from_edges(n, edges));
        let t = csr.transposed();
        prop_assert_eq!(t.num_edges(), csr.num_edges());
        // In-degree of v in csr == out-degree of v in transpose.
        for v in 0..n as VertexId {
            let indeg = csr.column_indices().iter().filter(|&&d| d == v).count();
            prop_assert_eq!(t.degree(v), indeg);
        }
    }

    #[test]
    fn rows_are_sorted_and_offsets_monotone((n, edges) in arb_edge_list()) {
        let csr = Csr::from_coo(&Coo::from_edges(n, edges));
        prop_assert!(csr.row_offsets().windows(2).all(|w| w[0] <= w[1]));
        for v in 0..n as VertexId {
            prop_assert!(csr.neighbors(v).windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn edge_src_inverts_edge_range((n, edges) in arb_edge_list()) {
        let csr = Csr::from_coo(&Coo::from_edges(n, edges));
        for v in 0..n as VertexId {
            for e in csr.edge_range(v) {
                prop_assert_eq!(csr.edge_src(e), v);
            }
        }
    }

    #[test]
    fn symmetrized_graph_is_symmetric((n, edges) in arb_edge_list()) {
        let g = GraphBuilder::from_coo(Coo::from_edges(n, edges))
            .symmetrize()
            .deduplicate()
            .build();
        prop_assert!(essentials_graph::properties::is_symmetric(g.csr()));
    }

    #[test]
    fn dedup_removes_all_duplicates_and_nothing_else((n, edges) in arb_edge_list()) {
        let mut coo = Coo::from_edges(n, edges.clone());
        coo.sort_and_dedup();
        let mut unique: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(s, d, _)| (s, d)).collect();
        unique.sort_unstable();
        unique.dedup();
        let got: Vec<(VertexId, VertexId)> = coo.iter().map(|(s, d, _)| (s, d)).collect();
        prop_assert_eq!(got, unique);
    }

    #[test]
    fn has_edge_agrees_with_neighbor_scan((n, edges) in arb_edge_list()) {
        let csr = Csr::from_coo(&Coo::from_edges(n, edges));
        for u in 0..n.min(10) as VertexId {
            for v in 0..n as VertexId {
                prop_assert_eq!(csr.has_edge(u, v), csr.neighbors(u).contains(&v));
            }
        }
    }
}
