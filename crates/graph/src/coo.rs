//! Coordinate (COO) storage: a plain list of `(src, dst, value)` triples.
//!
//! COO is the interchange format: generators and file readers produce it,
//! the builder normalizes it, and CSR/CSC are compiled from it. It is also
//! one of the representations a [`crate::Graph`] may retain (edge-centric
//! operators iterate it directly).

use crate::types::{EdgeValue, VertexId};

/// An edge list with an explicit vertex count.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<W: EdgeValue> {
    num_vertices: usize,
    srcs: Vec<VertexId>,
    dsts: Vec<VertexId>,
    vals: Vec<W>,
}

impl<W: EdgeValue> Coo<W> {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Coo {
            num_vertices,
            srcs: Vec::new(),
            dsts: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from parallel arrays. Panics if lengths differ or an endpoint
    /// is out of range.
    pub fn from_arrays(
        num_vertices: usize,
        srcs: Vec<VertexId>,
        dsts: Vec<VertexId>,
        vals: Vec<W>,
    ) -> Self {
        assert_eq!(srcs.len(), dsts.len(), "src/dst arrays differ in length");
        assert_eq!(srcs.len(), vals.len(), "edge/value arrays differ in length");
        let coo = Coo {
            num_vertices,
            srcs,
            dsts,
            vals,
        };
        coo.validate();
        coo
    }

    /// Builds from `(src, dst, value)` triples.
    pub fn from_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, W)>,
    ) -> Self {
        let mut coo = Coo::new(num_vertices);
        for (s, d, w) in edges {
            coo.push(s, d, w);
        }
        coo
    }

    /// Appends one edge. Panics on out-of-range endpoints or invalid (NaN)
    /// values.
    pub fn push(&mut self, src: VertexId, dst: VertexId, val: W) {
        assert!(
            (src as usize) < self.num_vertices && (dst as usize) < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        assert!(!val.is_invalid(), "invalid edge value (NaN)");
        self.srcs.push(src);
        self.dsts.push(dst);
        self.vals.push(val);
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (directed) edges, counting duplicates.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Source endpoints.
    #[inline]
    pub fn srcs(&self) -> &[VertexId] {
        &self.srcs
    }

    /// Destination endpoints.
    #[inline]
    pub fn dsts(&self) -> &[VertexId] {
        &self.dsts
    }

    /// Edge values.
    #[inline]
    pub fn vals(&self) -> &[W] {
        &self.vals
    }

    /// Iterates `(src, dst, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId, W)> + '_ {
        self.srcs
            .iter()
            .zip(&self.dsts)
            .zip(&self.vals)
            .map(|((&s, &d), &w)| (s, d, w))
    }

    /// Returns the transposed edge list (every edge reversed).
    pub fn transposed(&self) -> Self {
        Coo {
            num_vertices: self.num_vertices,
            srcs: self.dsts.clone(),
            dsts: self.srcs.clone(),
            vals: self.vals.clone(),
        }
    }

    /// Adds the reverse of every edge, making the graph symmetric (an edge
    /// that is already its own reverse — a self-loop — is not duplicated).
    pub fn symmetrize(&mut self) {
        let m = self.num_edges();
        for e in 0..m {
            let (s, d) = (self.srcs[e], self.dsts[e]);
            if s != d {
                self.srcs.push(d);
                self.dsts.push(s);
                self.vals.push(self.vals[e]);
            }
        }
    }

    /// Removes self-loops in place, preserving relative order.
    pub fn remove_self_loops(&mut self) {
        let keep: Vec<bool> = self
            .srcs
            .iter()
            .zip(&self.dsts)
            .map(|(s, d)| s != d)
            .collect();
        retain_by_mask(&mut self.srcs, &keep);
        retain_by_mask(&mut self.dsts, &keep);
        retain_by_mask(&mut self.vals, &keep);
    }

    /// Sorts edges by `(src, dst)` and removes duplicate `(src, dst)` pairs,
    /// keeping the **first** occurrence's value after the sort is made
    /// stable over the original order.
    pub fn sort_and_dedup(&mut self) {
        let mut order: Vec<usize> = (0..self.num_edges()).collect();
        order.sort_by_key(|&e| (self.srcs[e], self.dsts[e], e));
        let mut srcs = Vec::with_capacity(order.len());
        let mut dsts = Vec::with_capacity(order.len());
        let mut vals = Vec::with_capacity(order.len());
        for &e in &order {
            let (s, d) = (self.srcs[e], self.dsts[e]);
            if srcs.last() == Some(&s) && dsts.last() == Some(&d) {
                continue;
            }
            srcs.push(s);
            dsts.push(d);
            vals.push(self.vals[e]);
        }
        self.srcs = srcs;
        self.dsts = dsts;
        self.vals = vals;
    }

    /// Panics if any endpoint is out of range or any value invalid.
    pub fn validate(&self) {
        for (s, d, w) in self.iter() {
            assert!(
                (s as usize) < self.num_vertices && (d as usize) < self.num_vertices,
                "edge ({s}, {d}) out of range for {} vertices",
                self.num_vertices
            );
            assert!(!w.is_invalid(), "invalid edge value on ({s}, {d})");
        }
    }
}

fn retain_by_mask<T>(v: &mut Vec<T>, keep: &[bool]) {
    let mut i = 0;
    v.retain(|_| {
        let k = keep[i];
        i += 1;
        k
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coo<f32> {
        Coo::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (3, 3, 4.0)])
    }

    #[test]
    fn push_and_iter_round_trip() {
        let c = sample();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        let edges: Vec<_> = c.iter().collect();
        assert_eq!(edges[2], (2, 0, 3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut c = Coo::<f32>::new(2);
        c.push(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn push_nan_panics() {
        let mut c = Coo::<f32>::new(2);
        c.push(0, 1, f32::NAN);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let t = sample().transposed();
        let edges: Vec<_> = t.iter().collect();
        assert_eq!(edges[0], (1, 0, 1.0));
        assert_eq!(edges[3], (3, 3, 4.0));
    }

    #[test]
    fn symmetrize_skips_self_loops() {
        let mut c = sample();
        c.symmetrize();
        // 3 non-loop edges gain a reverse; the loop (3,3) does not.
        assert_eq!(c.num_edges(), 7);
    }

    #[test]
    fn remove_self_loops_drops_only_loops() {
        let mut c = sample();
        c.remove_self_loops();
        assert_eq!(c.num_edges(), 3);
        assert!(c.iter().all(|(s, d, _)| s != d));
    }

    #[test]
    fn sort_and_dedup_keeps_first_value() {
        let mut c = Coo::from_edges(3, [(1, 2, 9.0f32), (0, 1, 1.0), (1, 2, 5.0), (0, 1, 2.0)]);
        c.sort_and_dedup();
        let edges: Vec<_> = c.iter().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, 9.0)]);
    }

    #[test]
    fn empty_coo_is_fine() {
        let mut c = Coo::<()>::new(0);
        c.sort_and_dedup();
        c.remove_self_loops();
        c.symmetrize();
        assert_eq!(c.num_edges(), 0);
        c.validate();
    }

    #[test]
    fn unweighted_edges_use_unit_value() {
        let c = Coo::from_edges(2, [(0, 1, ())]);
        assert_eq!(c.vals(), &[()]);
    }
}
