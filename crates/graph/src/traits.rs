//! Capability traits decoupling operators from concrete representations.
//!
//! §III-D of the paper: "since parts of our graph abstraction allow for
//! multiple underlying representations, partitioned graphs could also simply
//! be expressed as another such representation … when the top-level graph
//! data structure is queried, the APIs will need to support the use of the
//! corresponding partitioned sub-graph to return the result of a query."
//! These traits are that top-level query surface: [`crate::Graph`],
//! subgraphs, and `essentials-partition`'s partitioned graphs all implement
//! them, so operators and algorithms are written once.

use std::ops::Range;

use crate::types::{EdgeId, EdgeValue, VertexId};

/// Minimal shape of any graph-like structure.
pub trait GraphBase {
    /// Number of vertices (ids are `0..num_vertices`).
    fn num_vertices(&self) -> usize;
    /// Number of directed edges.
    fn num_edges(&self) -> usize;
    /// Iterator over all vertex ids.
    fn vertices(&self) -> Range<VertexId> {
        0..self.num_vertices() as VertexId
    }
}

/// Forward (push-direction) adjacency: who do I point at?
pub trait OutNeighbors: GraphBase {
    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize;
    /// Edge-id range of `v`'s out-edges (ids in the primary CSR order).
    fn out_edges(&self, v: VertexId) -> Range<EdgeId>;
    /// Destination of out-edge `e`.
    fn edge_dest(&self, e: EdgeId) -> VertexId;
    /// Neighbor slice of `v` (destinations of `out_edges(v)` in order).
    fn out_neighbors(&self, v: VertexId) -> &[VertexId];
}

/// Reverse (pull-direction) adjacency: who points at me?
///
/// Backed by a CSC (transposed CSR); queries cost the same as the forward
/// direction, "at the cost of memory space" (§III-C).
pub trait InNeighbors: GraphBase {
    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> usize;
    /// In-neighbor slice of `v` (sources of edges into `v`).
    fn in_neighbors(&self, v: VertexId) -> &[VertexId];
}

/// Edge values (weights) addressable by edge id and by adjacency position.
pub trait EdgeWeights<W: EdgeValue>: OutNeighbors {
    /// Weight of out-edge `e`.
    fn edge_weight(&self, e: EdgeId) -> W;
    /// Weight slice aligned with [`OutNeighbors::out_neighbors`].
    fn out_neighbor_weights(&self, v: VertexId) -> &[W];
}

/// Weights of incoming edges, aligned with [`InNeighbors::in_neighbors`].
pub trait InEdgeWeights<W: EdgeValue>: InNeighbors {
    /// Weight slice aligned with [`InNeighbors::in_neighbors`] — entry `k`
    /// is the weight of the edge `in_neighbors(v)[k] → v`.
    fn in_neighbor_weights(&self, v: VertexId) -> &[W];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::graph::Graph;

    // A generic function usable with any representation — the point of the
    // trait layer.
    fn count_reachable_in_one_hop<G: OutNeighbors>(g: &G, v: VertexId) -> usize {
        g.out_neighbors(v).len()
    }

    #[test]
    fn operators_can_be_generic_over_representations() {
        let g = Graph::from_coo(&Coo::from_edges(3, [(0, 1, ()), (0, 2, ())]));
        assert_eq!(count_reachable_in_one_hop(&g, 0), 2);
        assert_eq!(g.vertices().count(), 3);
    }
}
