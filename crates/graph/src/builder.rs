//! Edge-list ingestion and normalization.
//!
//! Real inputs are messy: duplicate edges, self-loops, asymmetric listings
//! of undirected graphs. The builder normalizes an edge list according to
//! explicit options and compiles the representations the caller asked for,
//! so downstream operators can rely on clean invariants.

use crate::coo::Coo;
use crate::graph::Graph;
use crate::types::{EdgeValue, VertexId};

/// Configurable pipeline from raw edges to a [`Graph`].
///
/// ```
/// use essentials_graph::GraphBuilder;
///
/// let g = GraphBuilder::<f32>::new(4)
///     .edge(0, 1, 1.0)
///     .edge(1, 0, 9.0) // duplicate after symmetrize; dedup keeps one
///     .edge(2, 2, 1.0) // self-loop, dropped below
///     .edge(1, 2, 2.0)
///     .remove_self_loops()
///     .symmetrize()
///     .deduplicate()
///     .with_csc()
///     .build();
/// assert_eq!(g.get_num_edges(), 4); // {0<->1, 1<->2}
/// ```
pub struct GraphBuilder<W: EdgeValue = f32> {
    coo: Coo<W>,
    remove_self_loops: bool,
    symmetrize: bool,
    deduplicate: bool,
    with_csc: bool,
    with_coo: bool,
}

impl<W: EdgeValue> GraphBuilder<W> {
    /// Starts a builder over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            coo: Coo::new(num_vertices),
            remove_self_loops: false,
            symmetrize: false,
            deduplicate: false,
            with_csc: false,
            with_coo: false,
        }
    }

    /// Wraps an existing edge list.
    pub fn from_coo(coo: Coo<W>) -> Self {
        GraphBuilder {
            coo,
            remove_self_loops: false,
            symmetrize: false,
            deduplicate: false,
            with_csc: false,
            with_coo: false,
        }
    }

    /// Adds one edge.
    pub fn edge(mut self, src: VertexId, dst: VertexId, w: W) -> Self {
        self.coo.push(src, dst, w);
        self
    }

    /// Adds many edges.
    pub fn edges(mut self, it: impl IntoIterator<Item = (VertexId, VertexId, W)>) -> Self {
        for (s, d, w) in it {
            self.coo.push(s, d, w);
        }
        self
    }

    /// Drop self-loops during normalization.
    pub fn remove_self_loops(mut self) -> Self {
        self.remove_self_loops = true;
        self
    }

    /// Add the reverse of every edge (undirected semantics).
    pub fn symmetrize(mut self) -> Self {
        self.symmetrize = true;
        self
    }

    /// Collapse duplicate `(src, dst)` pairs (first value wins).
    pub fn deduplicate(mut self) -> Self {
        self.deduplicate = true;
        self
    }

    /// Also materialize the CSC (pull) representation.
    pub fn with_csc(mut self) -> Self {
        self.with_csc = true;
        self
    }

    /// Also retain the COO (edge-centric) representation.
    pub fn with_coo(mut self) -> Self {
        self.with_coo = true;
        self
    }

    /// Runs the normalization pipeline (loops → symmetrize → dedup, in that
    /// order) and compiles the requested representations.
    pub fn build(self) -> Graph<W> {
        let mut coo = self.coo;
        if self.remove_self_loops {
            coo.remove_self_loops();
        }
        if self.symmetrize {
            coo.symmetrize();
        }
        if self.deduplicate {
            coo.sort_and_dedup();
        }
        let mut g = Graph::from_coo(&coo);
        if self.with_coo {
            // Retain the normalized edge list, not the raw input.
            g.ensure_coo();
        }
        if self.with_csc {
            g.ensure_csc();
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{GraphBase, InNeighbors, OutNeighbors};

    #[test]
    fn pipeline_order_loops_then_symmetrize_then_dedup() {
        // A self-loop must not survive via symmetrization.
        let g = GraphBuilder::<()>::new(3)
            .edge(0, 0, ())
            .edge(0, 1, ())
            .edge(1, 0, ())
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_neighbors(1), &[0]);
    }

    #[test]
    fn symmetrize_without_dedup_keeps_parallel_edges() {
        let g = GraphBuilder::<()>::new(2)
            .edge(0, 1, ())
            .edge(1, 0, ())
            .symmetrize()
            .build();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn requested_views_are_materialized() {
        let g = GraphBuilder::<f32>::new(2)
            .edge(0, 1, 5.0)
            .with_csc()
            .with_coo()
            .build();
        assert!(g.csc().is_some());
        assert!(g.coo().is_some());
        assert_eq!(g.in_neighbors(1), &[0]);
    }

    #[test]
    fn retained_coo_reflects_normalization() {
        let g = GraphBuilder::<()>::new(2)
            .edge(0, 1, ())
            .edge(0, 1, ())
            .deduplicate()
            .with_coo()
            .build();
        assert_eq!(g.coo().unwrap().num_edges(), 1);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::<f32>::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
