//! Byte-coded compressed CSR — the Ligra+-style adjacency representation.
//!
//! Every hot operator in this workspace is memory-bandwidth bound on raw
//! CSR: a scale-24 R-MAT's edge array alone is ~1 GiB of `u32`s, and each
//! traversal streams it. Delta/byte coding shrinks that stream ~2.5–4× on
//! power-law graphs, turning DRAM bandwidth into effective edge
//! throughput — and makes out-of-core graphs practical (the byte array
//! maps read-only from disk, see `essentials-io`).
//!
//! **Encoding.** Per vertex `v` with sorted neighbor list `d0 ≤ d1 ≤ …`:
//! the first neighbor is stored as the *signed* difference `d0 − v`
//! (zigzag-mapped — neighbors cluster around their source on relabeled
//! graphs, so this difference is small); every subsequent neighbor as the
//! *unsigned* gap `dᵢ − dᵢ₋₁`. Each value is a **length-class gamma
//! code**: a 4-bit class `c` = the value's bit length (class 0 escapes to
//! 6 more bits for classes 16..=63), then the value's mantissa with the
//! leading bit implied — `v − 2^(c−1)` in `c−1` bits (class 1 stores the
//! value, 0 or 1, in one explicit bit). Byte-chunked continuation codes
//! (LEB128/nibble varints) waste their continuation bits on the broad
//! gap-length distributions power-law graphs produce; spending exactly
//! `4 + (c−1)` bits per value tracks the distribution's entropy much
//! closer (scale-20 R-MAT: 1.57 vs 1.74 bytes/edge). Rows are padded to a
//! byte boundary, so `byte_offsets` stay byte offsets and a row's stream
//! never aliases its neighbor. Duplicate edges encode as gap 0 and
//! round-trip exactly.
//!
//! Two offset arrays index the stream: `edge_offsets` (the raw CSR row
//! offsets, widened to `u64`) keep edge ids, degrees, and edge-balanced
//! chunking identical to the uncompressed representation; `byte_offsets`
//! locate each vertex's byte run. Edge *values* are not compressed — they
//! stay a flat array in CSR edge order (`()` for unweighted graphs costs
//! nothing), so the bytes/edge win is measured on topology, as in Ligra+.
//!
//! **Decoding.** [`NeighborDecoder`] is an allocation-free sequential
//! cursor over one vertex's run: the advance operators drive it one vertex
//! at a time, and [`NeighborDecoder::skip_ahead`] lets an edge-balanced chunk
//! start mid-row. Random access into a row is impossible by design — every
//! kernel that needs it goes through the decode-capability traits
//! ([`DecodeOutNeighbors`], [`DecodeInNeighbors`]) instead of the
//! slice-returning raw traits.

use std::ops::Range;

use essentials_parallel::{parallel_scan_with, Schedule, ThreadPool};

use crate::csr::Csr;
use crate::traits::GraphBase;
use crate::types::{EdgeId, EdgeValue, VertexId};

// ---------------------------------------------------------------------------
// Length-class gamma codec + zigzag
// ---------------------------------------------------------------------------

/// Maps a signed delta onto the unsigned code domain: 0, -1, 1, -2, … →
/// 0, 1, 2, 3, … so small-magnitude differences of either sign stay short.
#[inline]
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub(crate) fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Length class of `v`: its bit length, with 0 sharing class 1 (the class
/// whose one explicit mantissa bit stores the value directly).
#[inline]
pub(crate) fn class_of(v: u64) -> u32 {
    if v <= 1 {
        1
    } else {
        64 - v.leading_zeros()
    }
}

/// Code length of `v` in bits: 4 class bits (plus a 6-bit escape above
/// class 15) and a `c−1`-bit implied-leading-bit mantissa (1 explicit bit
/// for class 1).
#[inline]
pub(crate) fn code_len_bits(v: u64) -> usize {
    let c = class_of(v);
    let class_bits = if c <= 15 { 4 } else { 4 + 6 };
    class_bits + if c == 1 { 1 } else { (c - 1) as usize }
}

/// LSB-first bit appender over a row's output slice.
pub(crate) struct BitWriter<'a> {
    out: &'a mut [u8],
    at: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    #[inline]
    pub(crate) fn new(out: &'a mut [u8]) -> Self {
        BitWriter {
            out,
            at: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `k` bits of `bits` (`bits < 2^k`, `k ≤ 57`).
    #[inline]
    fn push(&mut self, bits: u64, k: u32) {
        self.acc |= bits << self.nbits;
        self.nbits += k;
        while self.nbits >= 8 {
            self.out[self.at] = self.acc as u8;
            self.at += 1;
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Encodes one value as class + mantissa.
    #[inline]
    pub(crate) fn put_value(&mut self, v: u64) {
        let c = class_of(v);
        debug_assert!(c <= 63, "value {v:#x} out of the escapable class range");
        if c <= 15 {
            self.push(u64::from(c), 4);
        } else {
            self.push(0, 4);
            self.push(u64::from(c), 6);
        }
        if c == 1 {
            self.push(v, 1);
        } else {
            self.push(v - (1u64 << (c - 1)), c - 1);
        }
    }

    /// Flushes the partial tail byte (zero-padded); returns bytes written.
    pub(crate) fn finish(mut self) -> usize {
        if self.nbits > 0 {
            self.out[self.at] = self.acc as u8;
            self.at += 1;
        }
        self.at
    }
}

/// Byte length of vertex `v`'s encoded neighbor run (bit total, padded to
/// a byte boundary).
fn row_encoded_len(v: VertexId, neighbors: &[VertexId]) -> usize {
    let Some((&first, rest)) = neighbors.split_first() else {
        return 0;
    };
    let mut bits = code_len_bits(zigzag(i64::from(first) - i64::from(v)));
    let mut prev = first;
    for &d in rest {
        assert!(d >= prev, "Ccsr requires sorted neighbor lists");
        bits += code_len_bits(u64::from(d - prev));
        prev = d;
    }
    bits.div_ceil(8)
}

/// Encodes vertex `v`'s neighbor run into `out` (exactly
/// [`row_encoded_len`] bytes).
fn encode_row(v: VertexId, neighbors: &[VertexId], out: &mut [u8]) {
    let Some((&first, rest)) = neighbors.split_first() else {
        return;
    };
    let len = out.len();
    let mut w = BitWriter::new(out);
    w.put_value(zigzag(i64::from(first) - i64::from(v)));
    let mut prev = first;
    for &d in rest {
        w.put_value(u64::from(d - prev));
        prev = d;
    }
    let written = w.finish();
    debug_assert_eq!(written, len);
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

/// Allocation-free sequential decoder of one vertex's neighbor run.
///
/// An exact-size iterator over the destinations of `v`'s out-edges, in the
/// stored (ascending) order — the same order the raw CSR slice has. The
/// advance operators create one per visited vertex; creation reads only
/// two offsets, so a decoder on a zero-degree vertex costs nothing.
#[derive(Clone)]
pub struct NeighborDecoder<'a> {
    bytes: &'a [u8],
    /// Next byte to refill the bit accumulator from.
    at: usize,
    /// LSB-first bit accumulator holding `nbits` not-yet-consumed bits.
    acc: u64,
    nbits: u32,
    remaining: usize,
    /// Previous decoded id; seeded with the source vertex for the first
    /// (zigzag-signed) delta.
    prev: i64,
    first: bool,
}

impl<'a> NeighborDecoder<'a> {
    /// Decoder over `run` (vertex `v`'s byte run) yielding `degree` ids.
    #[inline]
    pub fn new(v: VertexId, run: &'a [u8], degree: usize) -> Self {
        NeighborDecoder {
            bytes: run,
            at: 0,
            acc: 0,
            nbits: 0,
            remaining: degree,
            prev: i64::from(v),
            first: true,
        }
    }

    /// Consumes the next `k` bits (`1 ≤ k ≤ 57`), LSB-first.
    #[inline]
    fn read_bits(&mut self, k: u32) -> u64 {
        while self.nbits < k {
            self.acc |= u64::from(self.bytes[self.at]) << self.nbits;
            self.at += 1;
            self.nbits += 8;
        }
        let v = self.acc & ((1u64 << k) - 1);
        self.acc >>= k;
        self.nbits -= k;
        v
    }

    /// Decodes one class + mantissa value.
    #[inline]
    fn read_value(&mut self) -> u64 {
        let mut c = self.read_bits(4) as u32;
        if c == 0 {
            // Escaped class; a corrupt stream could escape to 0 — clamp so
            // the shift below stays in range (garbage in, garbage out, but
            // never a wild shift).
            c = (self.read_bits(6) as u32).max(1);
        }
        if c == 1 {
            self.read_bits(1)
        } else {
            (1u64 << (c - 1)) | self.read_bits(c - 1)
        }
    }

    /// Neighbors not yet decoded.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Decodes and discards the next `k` neighbors — how an edge-balanced
    /// chunk positions itself mid-row. Sequential by nature of the coding
    /// (each delta needs its predecessor); still branch-cheap, no output.
    #[inline]
    pub fn skip_ahead(&mut self, k: usize) {
        for _ in 0..k.min(self.remaining) {
            self.next();
        }
    }
}

impl Iterator for NeighborDecoder<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = self.read_value();
        let id = if self.first {
            self.first = false;
            self.prev + unzigzag(raw)
        } else {
            self.prev + raw as i64
        };
        self.prev = id;
        Some(id as VertexId)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for NeighborDecoder<'_> {}

// ---------------------------------------------------------------------------
// Decode-capability traits
// ---------------------------------------------------------------------------

/// Forward adjacency that must be *streamed*, not sliced: the compressed
/// counterpart of [`crate::traits::OutNeighbors`]. Edge ids, degrees, and
/// edge ranges keep their raw-CSR meaning (the edge-offset array is stored
/// uncompressed), so edge-balanced load balancing and per-edge weight
/// lookup work unchanged; only destination access goes through a decoder.
pub trait DecodeOutNeighbors: GraphBase {
    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> usize;
    /// Edge-id range of `v`'s out-edges (raw CSR order).
    fn out_edges(&self, v: VertexId) -> Range<EdgeId>;
    /// Streaming decoder over `v`'s destinations, ascending.
    fn out_decoder(&self, v: VertexId) -> NeighborDecoder<'_>;
}

/// Reverse adjacency in streamed form — the compressed counterpart of
/// [`crate::traits::InNeighbors`]. In-edge ids index the *transpose's*
/// edge array (its values array for in-weights), exactly as a raw CSC.
pub trait DecodeInNeighbors: GraphBase {
    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> usize;
    /// Edge-id range of `v`'s in-edges (transpose CSR order).
    fn in_edges(&self, v: VertexId) -> Range<EdgeId>;
    /// Streaming decoder over `v`'s in-neighbors (sources), ascending.
    fn in_decoder(&self, v: VertexId) -> NeighborDecoder<'_>;
}

/// Edge values addressable by out-edge id, for compressed adjacencies.
pub trait DecodeEdgeWeights<W: EdgeValue>: DecodeOutNeighbors {
    /// Weight of out-edge `e` (raw CSR edge order).
    fn edge_weight(&self, e: EdgeId) -> W;
}

/// Edge values addressable by in-edge id (transpose order).
pub trait DecodeInEdgeWeights<W: EdgeValue>: DecodeInNeighbors {
    /// Weight of in-edge `e` — entry `e` of the transpose's value array.
    fn in_edge_weight(&self, e: EdgeId) -> W;
}

// ---------------------------------------------------------------------------
// Owned compressed CSR
// ---------------------------------------------------------------------------

/// Shared-pointer shim for the encoder's disjoint per-row byte writes.
struct SendBytes(*mut u8);
// SAFETY: only used to write each vertex's disjoint `byte_offsets[v] ..
// byte_offsets[v+1]` run from within a joined parallel region; the
// underlying `Vec<u8>` borrow outlives the region.
unsafe impl Sync for SendBytes {}

/// Owned byte-coded compressed CSR.
///
/// Built from a raw [`Csr`] by [`Ccsr::from_csr`] (parallel: per-vertex
/// size pass → `essentials-parallel` exclusive scan → disjoint parallel
/// fill). Offsets are `u64` so the same section layout round-trips through
/// the on-disk container byte-for-byte (`essentials-io`), and a borrowed
/// [`CcsrView`] over mapped memory is indistinguishable from a view of an
/// owned `Ccsr` to every operator.
#[derive(Clone, Debug, PartialEq)]
pub struct Ccsr<W: EdgeValue = ()> {
    n: usize,
    m: usize,
    edge_offsets: Vec<u64>,
    byte_offsets: Vec<u64>,
    bytes: Vec<u8>,
    values: Vec<W>,
}

impl<W: EdgeValue> Ccsr<W> {
    /// Compresses a raw CSR. Rows must be sorted by destination (the CSR
    /// builder guarantees this); duplicate edges are preserved.
    ///
    /// Three passes, all parallel on `pool`: per-vertex encoded sizes feed
    /// an exclusive [`parallel_scan_with`] producing the byte offsets, then
    /// every vertex encodes its run into its disjoint slice of one
    /// allocation.
    pub fn from_csr(pool: &ThreadPool, csr: &Csr<W>) -> Self {
        let n = csr.num_vertices();
        let m = csr.num_edges();

        // Exclusive scan over per-vertex encoded sizes. The value closure
        // re-derives a row's length on each of the scan's two passes —
        // cheaper than materializing a sizes array for the typical short
        // row, and the second pass is what validates sortedness everywhere.
        let mut offsets_usize: Vec<usize> = Vec::new();
        let mut chunk_sums: Vec<usize> = Vec::new();
        let total = parallel_scan_with(
            pool,
            n,
            |v| row_encoded_len(v as VertexId, csr.neighbors(v as VertexId)),
            &mut offsets_usize,
            &mut chunk_sums,
        );

        // Disjoint parallel fill: vertex v owns bytes[offsets[v]..offsets[v+1]].
        let mut bytes = vec![0u8; total];
        if n > 0 {
            let ptr = SendBytes(bytes.as_mut_ptr());
            let ptr = &ptr;
            let offsets_ref: &[usize] = &offsets_usize;
            pool.parallel_for(0..n, Schedule::Dynamic(1024), |v| {
                let lo = offsets_ref[v];
                let hi = offsets_ref[v + 1];
                // SAFETY: rows are disjoint byte ranges by construction of
                // the exclusive scan; each index v runs exactly once, and
                // the parallel_for joins before `bytes` is used again.
                let run = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(lo), hi - lo) };
                encode_row(v as VertexId, csr.neighbors(v as VertexId), run);
            });
        }

        Ccsr {
            n,
            m,
            edge_offsets: csr.row_offsets().iter().map(|&o| o as u64).collect(),
            byte_offsets: offsets_usize.iter().map(|&o| o as u64).collect(),
            bytes,
            values: csr.values().to_vec(),
        }
    }

    /// Borrowed view of the whole structure — the form every operator and
    /// the mmap loader work with.
    #[inline]
    pub fn view(&self) -> CcsrView<'_, W> {
        CcsrView {
            n: self.n,
            m: self.m,
            edge_offsets: &self.edge_offsets,
            byte_offsets: &self.byte_offsets,
            bytes: &self.bytes,
            values: &self.values,
        }
    }

    /// Compressed topology size in bytes (the coded stream only — the
    /// quantity the bytes/edge experiment compares against `4·m` raw).
    #[inline]
    pub fn topology_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Raw section accessors for the on-disk container writer.
    #[inline]
    pub fn sections(&self) -> (&[u64], &[u64], &[u8], &[W]) {
        (
            &self.edge_offsets,
            &self.byte_offsets,
            &self.bytes,
            &self.values,
        )
    }
}

impl<W: EdgeValue> GraphBase for Ccsr<W> {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn num_edges(&self) -> usize {
        self.m
    }
}

impl<W: EdgeValue> DecodeOutNeighbors for Ccsr<W> {
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.view().out_degree(v)
    }
    #[inline]
    fn out_edges(&self, v: VertexId) -> Range<EdgeId> {
        self.view().out_edges(v)
    }
    #[inline]
    fn out_decoder(&self, v: VertexId) -> NeighborDecoder<'_> {
        self.view().decoder_raw(v)
    }
}

impl<W: EdgeValue> DecodeEdgeWeights<W> for Ccsr<W> {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> W {
        self.view().weight(e)
    }
}

// ---------------------------------------------------------------------------
// Borrowed view
// ---------------------------------------------------------------------------

/// Borrowed compressed CSR: the decode primitive shared by owned
/// [`Ccsr`]s and the mmap-backed loader. `Copy`, so operators can hold it
/// by value.
///
/// `values` may be empty for unweighted (`W = ()`) mapped containers;
/// weight lookups then return [`EdgeValue::default_weight`].
#[derive(Clone, Copy, Debug)]
pub struct CcsrView<'a, W: EdgeValue = ()> {
    n: usize,
    m: usize,
    edge_offsets: &'a [u64],
    byte_offsets: &'a [u64],
    bytes: &'a [u8],
    values: &'a [W],
}

impl<'a, W: EdgeValue> CcsrView<'a, W> {
    /// Assembles a view from raw sections, validating every structural
    /// invariant the decoder relies on (lengths, monotonicity, terminal
    /// offsets). The io loader routes mapped sections through here so a
    /// corrupt-but-checksummed file still cannot produce a view that
    /// indexes out of bounds.
    pub fn try_new(
        n: usize,
        m: usize,
        edge_offsets: &'a [u64],
        byte_offsets: &'a [u64],
        bytes: &'a [u8],
        values: &'a [W],
    ) -> Result<Self, String> {
        if edge_offsets.len() != n + 1 {
            return Err(format!(
                "edge_offsets has {} entries, expected n+1 = {}",
                edge_offsets.len(),
                n + 1
            ));
        }
        if byte_offsets.len() != n + 1 {
            return Err(format!(
                "byte_offsets has {} entries, expected n+1 = {}",
                byte_offsets.len(),
                n + 1
            ));
        }
        if edge_offsets.first().copied().unwrap_or(0) != 0
            || edge_offsets.last().copied().unwrap_or(0) != m as u64
        {
            return Err(format!("edge_offsets must span 0..={m}"));
        }
        if byte_offsets.first().copied().unwrap_or(0) != 0
            || byte_offsets.last().copied().unwrap_or(0) != bytes.len() as u64
        {
            return Err(format!("byte_offsets must span 0..={}", bytes.len()));
        }
        if edge_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("edge_offsets not monotone".to_string());
        }
        if byte_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("byte_offsets not monotone".to_string());
        }
        if !values.is_empty() && values.len() != m {
            return Err(format!("values has {} entries, expected {m}", values.len()));
        }
        Ok(CcsrView {
            n,
            m,
            edge_offsets,
            byte_offsets,
            bytes,
            values,
        })
    }

    /// Compressed topology size in bytes.
    #[inline]
    pub fn topology_bytes(&self) -> usize {
        self.bytes.len()
    }

    #[inline]
    fn decoder_raw(&self, v: VertexId) -> NeighborDecoder<'a> {
        let vi = v as usize;
        let lo = self.byte_offsets[vi] as usize;
        let hi = self.byte_offsets[vi + 1] as usize;
        let deg = (self.edge_offsets[vi + 1] - self.edge_offsets[vi]) as usize;
        NeighborDecoder::new(v, &self.bytes[lo..hi], deg)
    }

    #[inline]
    fn weight(&self, e: EdgeId) -> W {
        // Mapped unweighted containers carry no value section at all.
        self.values
            .get(e)
            .copied()
            .unwrap_or_else(W::default_weight)
    }
}

impl<W: EdgeValue> GraphBase for CcsrView<'_, W> {
    fn num_vertices(&self) -> usize {
        self.n
    }
    fn num_edges(&self) -> usize {
        self.m
    }
}

impl<W: EdgeValue> DecodeOutNeighbors for CcsrView<'_, W> {
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        let vi = v as usize;
        (self.edge_offsets[vi + 1] - self.edge_offsets[vi]) as usize
    }
    #[inline]
    fn out_edges(&self, v: VertexId) -> Range<EdgeId> {
        let vi = v as usize;
        self.edge_offsets[vi] as EdgeId..self.edge_offsets[vi + 1] as EdgeId
    }
    #[inline]
    fn out_decoder(&self, v: VertexId) -> NeighborDecoder<'_> {
        self.decoder_raw(v)
    }
}

impl<W: EdgeValue> DecodeEdgeWeights<W> for CcsrView<'_, W> {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> W {
        self.weight(e)
    }
}

// ---------------------------------------------------------------------------
// Two-sided containers (push needs out-adjacency, pull needs in-adjacency)
// ---------------------------------------------------------------------------

/// Owned compressed graph: compressed CSR plus (optionally) the compressed
/// CSC, mirroring [`crate::Graph`]'s multi-representation container. Pull
/// and adaptive traversals need the transpose; push-only consumers can
/// skip it.
pub struct CompressedGraph<W: EdgeValue = ()> {
    out: Ccsr<W>,
    in_: Option<Ccsr<W>>,
}

impl<W: EdgeValue> CompressedGraph<W> {
    /// Compresses every representation `g` holds: the CSR always, the CSC
    /// when present (so `g.with_csc()` graphs stay pull-capable).
    pub fn from_graph(pool: &ThreadPool, g: &crate::Graph<W>) -> Self {
        CompressedGraph {
            out: Ccsr::from_csr(pool, g.csr()),
            in_: g.csc().map(|csc| Ccsr::from_csr(pool, csc)),
        }
    }

    /// Push-only container from a single compressed CSR.
    pub fn from_out(out: Ccsr<W>) -> Self {
        CompressedGraph { out, in_: None }
    }

    /// The forward (out-adjacency) side.
    pub fn out_ccsr(&self) -> &Ccsr<W> {
        &self.out
    }

    /// The transpose side, when built.
    pub fn in_ccsr(&self) -> Option<&Ccsr<W>> {
        self.in_.as_ref()
    }

    /// Borrowed two-sided view.
    pub fn view(&self) -> CompressedGraphView<'_, W> {
        CompressedGraphView {
            out: self.out.view(),
            in_: self.in_.as_ref().map(|c| c.view()),
        }
    }

    fn require_in(&self) -> &Ccsr<W> {
        self.in_.as_ref().expect(
            "compressed CSC required: build via CompressedGraph::from_graph on a Graph with_csc()",
        )
    }
}

impl<W: EdgeValue> GraphBase for CompressedGraph<W> {
    fn num_vertices(&self) -> usize {
        self.out.n
    }
    fn num_edges(&self) -> usize {
        self.out.m
    }
}

impl<W: EdgeValue> DecodeOutNeighbors for CompressedGraph<W> {
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.out.out_degree(v)
    }
    #[inline]
    fn out_edges(&self, v: VertexId) -> Range<EdgeId> {
        self.out.out_edges(v)
    }
    #[inline]
    fn out_decoder(&self, v: VertexId) -> NeighborDecoder<'_> {
        self.out.out_decoder(v)
    }
}

impl<W: EdgeValue> DecodeInNeighbors for CompressedGraph<W> {
    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.require_in().out_degree(v)
    }
    #[inline]
    fn in_edges(&self, v: VertexId) -> Range<EdgeId> {
        self.require_in().out_edges(v)
    }
    #[inline]
    fn in_decoder(&self, v: VertexId) -> NeighborDecoder<'_> {
        self.require_in().out_decoder(v)
    }
}

impl<W: EdgeValue> DecodeEdgeWeights<W> for CompressedGraph<W> {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> W {
        self.out.edge_weight(e)
    }
}

impl<W: EdgeValue> DecodeInEdgeWeights<W> for CompressedGraph<W> {
    #[inline]
    fn in_edge_weight(&self, e: EdgeId) -> W {
        self.require_in().edge_weight(e)
    }
}

/// Borrowed two-sided compressed view — what the mmap loader hands out.
/// `Copy`, like [`CcsrView`].
#[derive(Clone, Copy)]
pub struct CompressedGraphView<'a, W: EdgeValue = ()> {
    /// Forward adjacency view.
    pub out: CcsrView<'a, W>,
    /// Transpose view when the container carries one.
    pub in_: Option<CcsrView<'a, W>>,
}

impl<'a, W: EdgeValue> CompressedGraphView<'a, W> {
    /// Assembles a two-sided view; the transpose (when present) must agree
    /// with the forward side on the vertex/edge counts.
    pub fn try_new(out: CcsrView<'a, W>, in_: Option<CcsrView<'a, W>>) -> Result<Self, String> {
        if let Some(t) = &in_ {
            if t.n != out.n || t.m != out.m {
                return Err(format!(
                    "transpose shape ({}, {}) disagrees with forward ({}, {})",
                    t.n, t.m, out.n, out.m
                ));
            }
        }
        Ok(CompressedGraphView { out, in_ })
    }

    fn require_in(&self) -> &CcsrView<'a, W> {
        self.in_
            .as_ref()
            .expect("compressed CSC required: this container was written without a transpose")
    }
}

impl<W: EdgeValue> GraphBase for CompressedGraphView<'_, W> {
    fn num_vertices(&self) -> usize {
        self.out.n
    }
    fn num_edges(&self) -> usize {
        self.out.m
    }
}

impl<W: EdgeValue> DecodeOutNeighbors for CompressedGraphView<'_, W> {
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.out.out_degree(v)
    }
    #[inline]
    fn out_edges(&self, v: VertexId) -> Range<EdgeId> {
        self.out.out_edges(v)
    }
    #[inline]
    fn out_decoder(&self, v: VertexId) -> NeighborDecoder<'_> {
        self.out.decoder_raw(v)
    }
}

impl<W: EdgeValue> DecodeInNeighbors for CompressedGraphView<'_, W> {
    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.require_in().out_degree(v)
    }
    #[inline]
    fn in_edges(&self, v: VertexId) -> Range<EdgeId> {
        self.require_in().out_edges(v)
    }
    #[inline]
    fn in_decoder(&self, v: VertexId) -> NeighborDecoder<'_> {
        self.require_in().decoder_raw(v)
    }
}

impl<W: EdgeValue> DecodeEdgeWeights<W> for CompressedGraphView<'_, W> {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> W {
        self.out.weight(e)
    }
}

impl<W: EdgeValue> DecodeInEdgeWeights<W> for CompressedGraphView<'_, W> {
    #[inline]
    fn in_edge_weight(&self, e: EdgeId) -> W {
        self.require_in().weight(e)
    }
}

// Tests that build a Ccsr through `from_csr` spawn a thread pool and are
// ignored under Miri (repo-wide convention, see ci.yml). What Miri runs
// here is the pool-free codec surface: the class-code/zigzag primitives, the
// row codec driven directly, and `prop_code_boundaries` — the unsafe-free
// decode path over attacker-shaped byte buffers.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::graph::Graph;
    use proptest::prelude::*;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn csr_of(n: usize, edges: &[(VertexId, VertexId)]) -> Csr<()> {
        let mut coo = Coo::new(n);
        for &(s, d) in edges {
            coo.push(s, d, ());
        }
        Csr::from_coo(&coo)
    }

    fn decode_all<W: EdgeValue>(c: &Ccsr<W>) -> Vec<Vec<VertexId>> {
        (0..c.num_vertices() as VertexId)
            .map(|v| c.out_decoder(v).collect())
            .collect()
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn round_trips_a_small_graph() {
        let csr = csr_of(6, &[(0, 1), (0, 3), (0, 5), (2, 0), (2, 2), (5, 4)]);
        let c = Ccsr::from_csr(&pool(), &csr);
        assert_eq!(c.num_vertices(), 6);
        assert_eq!(c.num_edges(), 6);
        for v in 0..6u32 {
            let raw: Vec<VertexId> = csr.neighbors(v).to_vec();
            let dec: Vec<VertexId> = c.out_decoder(v).collect();
            assert_eq!(dec, raw, "vertex {v}");
            assert_eq!(c.out_edges(v), csr.edge_range(v));
        }
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn zero_degree_vertices_and_empty_graphs() {
        let c = Ccsr::from_csr(&pool(), &csr_of(4, &[]));
        assert_eq!(c.topology_bytes(), 0);
        assert!(decode_all(&c).iter().all(Vec::is_empty));
        let empty = Ccsr::<()>::from_csr(&pool(), &csr_of(0, &[]));
        assert_eq!(empty.num_vertices(), 0);
        assert_eq!(empty.view().topology_bytes(), 0);
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn self_loops_and_duplicates_round_trip() {
        // Self-loop encodes as zigzag(0); duplicate edges as gap 0.
        let csr = csr_of(3, &[(1, 1), (1, 1), (1, 2), (2, 0), (2, 0)]);
        let c = Ccsr::from_csr(&pool(), &csr);
        assert_eq!(decode_all(&c), vec![vec![], vec![1, 1, 2], vec![0, 0]]);
    }

    #[test]
    fn max_vertex_id_deltas_round_trip() {
        // Both extremes of the signed first delta, and a maximal gap —
        // exercised on the row codec directly (a graph with 2^32 vertices
        // would make the test allocate its offset arrays for real).
        let hi = VertexId::MAX - 1;
        let row_up = [hi]; // from vertex 0: first delta ≈ +MAX
        let mut buf = vec![0u8; row_encoded_len(0, &row_up)];
        encode_row(0, &row_up, &mut buf);
        assert_eq!(
            NeighborDecoder::new(0, &buf, 1).collect::<Vec<_>>(),
            vec![hi]
        );
        let row_down = [0, hi]; // from vertex hi: first delta ≈ -MAX, then gap ≈ +MAX
        let mut buf = vec![0u8; row_encoded_len(hi, &row_down)];
        encode_row(hi, &row_down, &mut buf);
        assert_eq!(
            NeighborDecoder::new(hi, &buf, 2).collect::<Vec<_>>(),
            vec![0, hi]
        );
    }

    #[test]
    fn class_code_boundaries() {
        // Both sides of every interesting class edge: the shared class-1
        // bucket {0,1}, the first implied-MSB class, the last direct class
        // (15), the first escaped class (16), and zigzagged u32 extremes
        // (class 33 — past a 5-bit escape, which is why the escape is 6
        // bits).
        let cases: &[(u64, u32, usize)] = &[
            (0, 1, 4 + 1),
            (1, 1, 4 + 1),
            (2, 2, 4 + 1),
            (3, 2, 4 + 1),
            (4, 3, 4 + 2),
            (0x3fff, 14, 4 + 13),
            (0x4000, 15, 4 + 14),
            (0x7fff, 15, 4 + 14),
            (0x8000, 16, 4 + 6 + 15),
            (u64::from(u32::MAX), 32, 4 + 6 + 31),
            (zigzag(i64::from(VertexId::MAX - 1)), 33, 4 + 6 + 32),
            (zigzag(-i64::from(VertexId::MAX - 1)), 33, 4 + 6 + 32),
        ];
        for &(v, class, len_bits) in cases {
            assert_eq!(class_of(v), class, "class of {v:#x}");
            assert_eq!(code_len_bits(v), len_bits, "code length of {v:#x}");
        }
        // All boundary values round-trip through one bit stream, and the
        // size pass predicts the flushed byte count exactly.
        let values: Vec<u64> = cases.iter().map(|&(v, ..)| v).collect();
        let total_bits: usize = values.iter().map(|&v| code_len_bits(v)).sum();
        let mut buf = vec![0u8; total_bits.div_ceil(8)];
        let mut w = BitWriter::new(&mut buf);
        for &v in &values {
            w.put_value(v);
        }
        assert_eq!(w.finish(), total_bits.div_ceil(8));
        let mut d = NeighborDecoder::new(0, &buf, 0);
        for &v in &values {
            assert_eq!(d.read_value(), v, "round-trip of {v:#x}");
        }
    }

    #[test]
    fn zigzag_is_a_bijection_on_the_interesting_range() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            -i64::from(u32::MAX),
            i64::from(u32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn skip_positions_mid_row() {
        let neigh: Vec<VertexId> = vec![2, 3, 9, 10, 40, 41, 500];
        let edges: Vec<(VertexId, VertexId)> = neigh.iter().map(|&d| (5, d)).collect();
        let c = Ccsr::from_csr(&pool(), &csr_of(600, &edges));
        for start in 0..=neigh.len() {
            let mut d = c.out_decoder(5);
            d.skip_ahead(start);
            assert_eq!(d.remaining(), neigh.len() - start);
            let rest: Vec<VertexId> = d.collect();
            assert_eq!(rest, &neigh[start..], "skip_ahead({start})");
        }
        // Over-skip is a clean exhaustion, not a panic.
        let mut d = c.out_decoder(5);
        d.skip_ahead(neigh.len() + 10);
        assert_eq!(d.next(), None);
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn weighted_values_ride_along_uncompressed() {
        let mut coo = Coo::new(4);
        coo.push(0, 1, 2.5f32);
        coo.push(0, 2, 0.5);
        coo.push(3, 0, 7.0);
        let csr = Csr::from_coo(&coo);
        let c = Ccsr::from_csr(&pool(), &csr);
        for e in 0..csr.num_edges() {
            assert_eq!(c.edge_weight(e), csr.edge_value(e));
        }
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn compressed_graph_mirrors_raw_adjacency_both_sides() {
        let mut coo = Coo::new(50);
        for i in 0..200u32 {
            coo.push(i % 50, (i * 7 + 3) % 50, ());
        }
        let g = Graph::from_coo(&coo).with_csc();
        let cg = CompressedGraph::from_graph(&pool(), &g);
        use crate::traits::{InNeighbors, OutNeighbors};
        for v in 0..50u32 {
            let out: Vec<VertexId> = cg.out_decoder(v).collect();
            assert_eq!(out, g.out_neighbors(v));
            let inn: Vec<VertexId> = cg.in_decoder(v).collect();
            assert_eq!(inn, g.in_neighbors(v));
        }
        let view = cg.view();
        assert_eq!(view.num_edges(), g.num_edges());
        assert!(view.in_.is_some());
    }

    #[cfg_attr(miri, ignore = "spawns a thread pool")]
    #[test]
    fn view_validation_rejects_malformed_sections() {
        let c = Ccsr::from_csr(&pool(), &csr_of(3, &[(0, 1), (1, 2)]));
        let (eo, bo, by, va) = c.sections();
        assert!(CcsrView::try_new(3, 2, eo, bo, by, va).is_ok());
        assert!(CcsrView::try_new(2, 2, eo, bo, by, va).is_err()); // n mismatch
        assert!(CcsrView::try_new(3, 3, eo, bo, by, va).is_err()); // m mismatch
        let bad_bo = vec![0u64, 5, 1, by.len() as u64];
        assert!(CcsrView::try_new(3, 2, eo, &bad_bo, by, va).is_err()); // non-monotone
    }

    proptest! {
        /// Encoder↔decoder round-trip over arbitrary sorted adjacency:
        /// zero-degree vertices, self-loops, duplicates, and clustered or
        /// spread-out ids all reduce to "decode equals the raw slice".
        #[cfg_attr(miri, ignore = "spawns a thread pool")]
        #[test]
        fn prop_round_trip(edges in prop::collection::vec((0u32..300, 0u32..300), 0..600)) {
            let csr = csr_of(300, &edges);
            let c = Ccsr::from_csr(&pool(), &csr);
            prop_assert_eq!(c.num_edges(), csr.num_edges());
            for v in 0..300u32 {
                let dec: Vec<VertexId> = c.out_decoder(v).collect();
                prop_assert_eq!(dec.as_slice(), csr.neighbors(v));
            }
        }

        /// Deltas that straddle the direct/escaped class boundary and land
        /// in every mantissa width round-trip; the encoded size matches the
        /// size pass exactly (the invariant the disjoint parallel fill
        /// relies on).
        #[test]
        fn prop_code_boundaries(gaps in prop::collection::vec(0u32..(1 << 29), 1..40), start in 0u32..(1 << 29)) {
            let mut d = start;
            let mut neigh = vec![d];
            for g in &gaps {
                d = d.saturating_add(*g).min(VertexId::MAX - 1);
                neigh.push(d);
            }
            // Row codec directly: ids up to ~2^32 would need a 2^32-vertex
            // graph to route through `from_csr`.
            let mut buf = vec![0u8; row_encoded_len(7, &neigh)];
            encode_row(7, &neigh, &mut buf);
            let dec: Vec<VertexId> = NeighborDecoder::new(7, &buf, neigh.len()).collect();
            prop_assert_eq!(dec, neigh);
        }

        /// `skip_ahead(k)` lands exactly where k `next()` calls would.
        #[cfg_attr(miri, ignore = "spawns a thread pool")]
        #[test]
        fn prop_skip_equals_next(edges in prop::collection::vec((0u32..100, 0u32..100), 0..200), k in 0usize..32) {
            let csr = csr_of(100, &edges);
            let c = Ccsr::from_csr(&pool(), &csr);
            for v in 0..100u32 {
                let mut a = c.out_decoder(v);
                a.skip_ahead(k);
                let mut b = c.out_decoder(v);
                for _ in 0..k { b.next(); }
                prop_assert_eq!(a.collect::<Vec<_>>(), b.collect::<Vec<_>>());
            }
        }
    }
}
