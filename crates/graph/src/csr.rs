//! Compressed Sparse Row — the workhorse representation (paper Listing 1).
//!
//! `row_offsets[v]..row_offsets[v+1]` indexes the out-edges of `v` inside
//! `column_indices`/`values`. A CSC is simply the CSR of the transposed
//! edge list, so pull traversal reuses this type ([`Csr::transposed`]).

use crate::coo::Coo;
use crate::types::{EdgeId, EdgeValue, VertexId};

/// Compressed-sparse-row adjacency.
///
/// Field names follow the paper's `csr_t` (Listing 1): `row_offsets`,
/// `column_indices`, `values`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<W: EdgeValue> {
    row_offsets: Vec<EdgeId>,
    column_indices: Vec<VertexId>,
    values: Vec<W>,
}

impl<W: EdgeValue> Csr<W> {
    /// Compiles a CSR from an edge list with a counting sort over sources.
    /// Duplicate edges are preserved; use the builder to normalize first.
    /// Within a row, edges keep the relative order they had in the COO and
    /// are then sorted by destination for cache-friendly traversal and
    /// binary-searchable adjacency (needed by intersection operators).
    pub fn from_coo(coo: &Coo<W>) -> Self {
        let n = coo.num_vertices();
        let m = coo.num_edges();
        let mut row_offsets = vec![0usize; n + 1];
        for &s in coo.srcs() {
            row_offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            row_offsets[v + 1] += row_offsets[v];
        }
        let mut column_indices = vec![0 as VertexId; m];
        let mut values = vec![W::default_weight(); m];
        let mut cursor = row_offsets.clone();
        for (s, d, w) in coo.iter() {
            let at = cursor[s as usize];
            column_indices[at] = d;
            values[at] = w;
            cursor[s as usize] += 1;
        }
        // Sort each row by destination (keeping values aligned).
        for v in 0..n {
            let (lo, hi) = (row_offsets[v], row_offsets[v + 1]);
            if hi - lo > 1 {
                let mut row: Vec<(VertexId, W)> = column_indices[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied())
                    .collect();
                row.sort_by_key(|&(d, _)| d);
                for (k, (d, w)) in row.into_iter().enumerate() {
                    column_indices[lo + k] = d;
                    values[lo + k] = w;
                }
            }
        }
        Csr {
            row_offsets,
            column_indices,
            values,
        }
    }

    /// An empty graph over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Csr {
            row_offsets: vec![0; n + 1],
            column_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds directly from raw CSR arrays (used by I/O). Panics if the
    /// arrays are inconsistent.
    pub fn from_raw(
        row_offsets: Vec<EdgeId>,
        column_indices: Vec<VertexId>,
        values: Vec<W>,
    ) -> Self {
        assert!(!row_offsets.is_empty(), "row_offsets must have n+1 entries");
        assert_eq!(
            *row_offsets.last().unwrap(),
            column_indices.len(),
            "row_offsets must end at the edge count"
        );
        assert_eq!(
            column_indices.len(),
            values.len(),
            "column/value arrays differ in length"
        );
        assert!(
            row_offsets.windows(2).all(|w| w[0] <= w[1]),
            "row_offsets must be non-decreasing"
        );
        let n = row_offsets.len() - 1;
        assert!(
            column_indices.iter().all(|&d| (d as usize) < n),
            "column index out of range"
        );
        Csr {
            row_offsets,
            column_indices,
            values,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.column_indices.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Edge-id range of `v`'s out-edges — the paper's `get_edges(v)`.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        self.row_offsets[v as usize]..self.row_offsets[v as usize + 1]
    }

    /// Destination of edge `e` — the paper's `get_dest_vertex(e)`.
    #[inline]
    pub fn edge_dest(&self, e: EdgeId) -> VertexId {
        self.column_indices[e]
    }

    /// Value of edge `e` — the paper's `get_edge_weight(e)`.
    #[inline]
    pub fn edge_value(&self, e: EdgeId) -> W {
        self.values[e]
    }

    /// Source of edge `e`, recovered by binary search over `row_offsets`
    /// (O(log n); edge-centric frontiers that need this hot should carry the
    /// source alongside the edge id instead).
    pub fn edge_src(&self, e: EdgeId) -> VertexId {
        debug_assert!(e < self.num_edges());
        // partition_point returns the first v with row_offsets[v] > e; the
        // source row is that minus one.
        (self.row_offsets.partition_point(|&off| off <= e) - 1) as VertexId
    }

    /// The neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.column_indices[self.edge_range(v)]
    }

    /// The value slice aligned with [`Csr::neighbors`].
    #[inline]
    pub fn neighbor_values(&self, v: VertexId) -> &[W] {
        &self.values[self.edge_range(v)]
    }

    /// True if `u → v` exists (binary search; rows are destination-sorted).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Raw row offsets (n+1 entries).
    #[inline]
    pub fn row_offsets(&self) -> &[EdgeId] {
        &self.row_offsets
    }

    /// Raw destination array (CSR order defines [`EdgeId`]s).
    #[inline]
    pub fn column_indices(&self) -> &[VertexId] {
        &self.column_indices
    }

    /// Raw value array aligned with [`Csr::column_indices`].
    #[inline]
    pub fn values(&self) -> &[W] {
        &self.values
    }

    /// Converts back to an edge list in CSR order.
    pub fn to_coo(&self) -> Coo<W> {
        let mut coo = Coo::new(self.num_vertices());
        for v in 0..self.num_vertices() as VertexId {
            for e in self.edge_range(v) {
                coo.push(v, self.edge_dest(e), self.edge_value(e));
            }
        }
        coo
    }

    /// The CSR of the transposed graph — i.e. this graph's CSC. Pull
    /// traversals iterate `transposed().neighbors(v)` to read `v`'s
    /// in-neighbors.
    pub fn transposed(&self) -> Csr<W> {
        Csr::from_coo(&self.to_coo().transposed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr<f32> {
        // 0 -> 1 (1.0), 0 -> 2 (4.0), 1 -> 3 (2.0), 2 -> 3 (1.0)
        Csr::from_coo(&Coo::from_edges(
            4,
            [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 1.0)],
        ))
    }

    #[test]
    fn offsets_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.row_offsets(), &[0, 2, 3, 4, 4]);
    }

    #[test]
    fn listing1_api_surface() {
        let g = diamond();
        let r = g.edge_range(0);
        assert_eq!(r, 0..2);
        assert_eq!(g.edge_dest(0), 1);
        assert_eq!(g.edge_value(1), 4.0);
        assert_eq!(g.edge_src(3), 2);
    }

    #[test]
    fn rows_are_destination_sorted_even_if_input_is_not() {
        let g = Csr::from_coo(&Coo::from_edges(3, [(0, 2, ()), (0, 1, ()), (0, 0, ())]));
        assert_eq!(g.neighbors(0), &[0, 1, 2]);
    }

    #[test]
    fn values_stay_aligned_after_row_sort() {
        let g = Csr::from_coo(&Coo::from_edges(3, [(0, 2, 20.0f32), (0, 1, 10.0)]));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor_values(0), &[10.0, 20.0]);
    }

    #[test]
    fn edge_src_recovers_sources_across_empty_rows() {
        let g = Csr::from_coo(&Coo::from_edges(5, [(0, 1, ()), (3, 4, ()), (3, 0, ())]));
        assert_eq!(g.edge_src(0), 0);
        assert_eq!(g.edge_src(1), 3);
        assert_eq!(g.edge_src(2), 3);
    }

    #[test]
    fn coo_round_trip_preserves_graph() {
        let g = diamond();
        let g2 = Csr::from_coo(&g.to_coo());
        assert_eq!(g, g2);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = diamond();
        assert_eq!(g.transposed().transposed(), g);
    }

    #[test]
    fn transpose_swaps_in_and_out_degrees() {
        let g = diamond();
        let t = g.transposed();
        assert_eq!(t.degree(3), 2); // 3 had in-degree 2
        assert_eq!(t.degree(0), 0); // 0 had in-degree 0
        assert_eq!(t.neighbors(3), &[1, 2]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::<()>::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(2), 0);
        assert_eq!(g.to_coo().num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_raw_rejects_bad_offsets() {
        Csr::<()>::from_raw(vec![0, 2, 1, 2], vec![0, 1], vec![(), ()]);
    }

    #[test]
    fn duplicate_edges_are_preserved_by_csr() {
        let g = Csr::from_coo(&Coo::from_edges(2, [(0, 1, 1.0f32), (0, 1, 2.0)]));
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }
}
