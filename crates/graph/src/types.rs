//! Identifier and edge-value types shared across the workspace.

/// A vertex identifier. 32 bits index 4 billion vertices while halving the
/// memory traffic of `usize` ids — the dominant cost of traversal operators.
pub type VertexId = u32;

/// An edge identifier: the position of the edge in its representation's
/// edge array (CSR order for the primary representation).
pub type EdgeId = usize;

/// Sentinel for "no vertex" (e.g. unreached predecessors).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Values attachable to edges (weights). Implemented for the numeric types
/// graph analytics actually uses; `()` gives unweighted graphs zero storage
/// per edge.
pub trait EdgeValue: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Value used when an input supplies no explicit weight (Matrix Market
    /// `pattern` files, unweighted generators).
    fn default_weight() -> Self;
    /// True if the value is unusable in comparisons (float NaN). Builders
    /// reject such weights so atomic-min relaxations stay correct.
    fn is_invalid(&self) -> bool {
        false
    }
}

impl EdgeValue for () {
    fn default_weight() -> Self {}
}

impl EdgeValue for f32 {
    fn default_weight() -> Self {
        1.0
    }
    fn is_invalid(&self) -> bool {
        self.is_nan()
    }
}

impl EdgeValue for f64 {
    fn default_weight() -> Self {
        1.0
    }
    fn is_invalid(&self) -> bool {
        self.is_nan()
    }
}

impl EdgeValue for u32 {
    fn default_weight() -> Self {
        1
    }
}

impl EdgeValue for u64 {
    fn default_weight() -> Self {
        1
    }
}

impl EdgeValue for i32 {
    fn default_weight() -> Self {
        1
    }
}

impl EdgeValue for i64 {
    fn default_weight() -> Self {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_edges_are_zero_sized() {
        assert_eq!(std::mem::size_of::<()>(), 0);
        assert_eq!(<()>::default_weight(), ());
    }

    #[test]
    fn nan_is_invalid_for_floats_only() {
        assert!(f32::NAN.is_invalid());
        assert!(f64::NAN.is_invalid());
        assert!(!1.0f32.is_invalid());
        assert!(!EdgeValue::is_invalid(&7u32));
    }
}
