//! Vertex relabeling — degree-ordered renumbering, the classic
//! cache-locality preprocessing (hubs first ⇒ hot rows share pages; also
//! what makes rank-ordered triangle counting cheap on power-law graphs).

use crate::coo::Coo;
use crate::csr::Csr;
use crate::types::{EdgeValue, VertexId};

/// A relabeling: a bijection between old and new vertex ids.
pub struct Relabeling {
    /// `new_of[old]` = new id.
    pub new_of: Vec<VertexId>,
    /// `old_of[new]` = old id.
    pub old_of: Vec<VertexId>,
}

impl Relabeling {
    /// Builds the inverse map from a forward map. Panics if `new_of` is not
    /// a permutation.
    pub fn from_forward(new_of: Vec<VertexId>) -> Self {
        let n = new_of.len();
        let mut old_of = vec![VertexId::MAX; n];
        for (old, &new) in new_of.iter().enumerate() {
            assert!(
                (new as usize) < n && old_of[new as usize] == VertexId::MAX,
                "relabeling is not a permutation"
            );
            old_of[new as usize] = old as VertexId;
        }
        Relabeling { new_of, old_of }
    }

    /// Translates a property vector from old to new id order.
    pub fn permute<T: Clone>(&self, old_order: &[T]) -> Vec<T> {
        assert_eq!(old_order.len(), self.old_of.len());
        self.old_of
            .iter()
            .map(|&old| old_order[old as usize].clone())
            .collect()
    }
}

/// Renumbers vertices by descending out-degree (ties by old id, so the
/// result is deterministic). Returns the relabeled graph and the mapping.
pub fn relabel_by_degree<W: EdgeValue>(g: &Csr<W>) -> (Csr<W>, Relabeling) {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    // order[new] = old  ==>  forward map inverts it.
    let mut new_of = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        new_of[old as usize] = new as VertexId;
    }
    let relabeling = Relabeling::from_forward(new_of);
    let mut coo = Coo::new(n);
    for old in 0..n as VertexId {
        let new_src = relabeling.new_of[old as usize];
        for e in g.edge_range(old) {
            coo.push(
                new_src,
                relabeling.new_of[g.edge_dest(e) as usize],
                g.edge_value(e),
            );
        }
    }
    (Csr::from_coo(&coo), relabeling)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> Csr<f32> {
        // 2 is the hub (degree 3), 0 has degree 1, 1 has degree 0.
        Csr::from_coo(&Coo::from_edges(
            3,
            [(2, 0, 1.0), (2, 1, 2.0), (2, 2, 3.0), (0, 1, 4.0)],
        ))
    }

    #[test]
    fn hubs_come_first() {
        let g = skewed();
        let (r, map) = relabel_by_degree(&g);
        // New id 0 must be the old hub (vertex 2).
        assert_eq!(map.old_of[0], 2);
        assert_eq!(r.degree(0), 3);
        // Degrees are non-increasing in new order.
        let degs: Vec<usize> = (0..3).map(|v| r.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn relabeling_preserves_structure_and_weights() {
        let g = skewed();
        let (r, map) = relabel_by_degree(&g);
        assert_eq!(r.num_edges(), g.num_edges());
        for old in 0..3 as VertexId {
            let new = map.new_of[old as usize];
            assert_eq!(r.degree(new), g.degree(old));
            // Every old edge exists under new ids, with its weight.
            for e in g.edge_range(old) {
                let nd = map.new_of[g.edge_dest(e) as usize];
                let pos = r.neighbors(new).iter().position(|&x| x == nd).unwrap();
                assert_eq!(r.neighbor_values(new)[pos], g.edge_value(e));
            }
        }
    }

    #[test]
    fn permute_translates_property_vectors() {
        let g = skewed();
        let (_, map) = relabel_by_degree(&g);
        let by_old = vec!["a", "b", "c"];
        let by_new = map.permute(&by_old);
        // new 0 = old 2 => "c" first.
        assert_eq!(by_new[0], "c");
        // Round trip through the inverse.
        for old in 0..3usize {
            assert_eq!(by_new[map.new_of[old] as usize], by_old[old]);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutations() {
        Relabeling::from_forward(vec![0, 0]);
    }

    #[test]
    fn deterministic_with_degree_ties() {
        let g = Csr::<()>::from_coo(&Coo::from_edges(4, [(0, 1, ()), (2, 3, ())]));
        let (_, a) = relabel_by_degree(&g);
        let (_, b) = relabel_by_degree(&g);
        assert_eq!(a.new_of, b.new_of);
        // Ties broken by old id: 0 before 2, 1 before 3.
        assert_eq!(a.old_of, vec![0, 2, 1, 3]);
    }
}
