//! The multi-representation graph container (paper Listing 1 + §III-C).
//!
//! The paper's `graph_t` uses *variadic inheritance* to stack underlying
//! representations behind one graph-focused API. The Rust equivalent is
//! composition: a [`Graph`] always owns a CSR (the push representation) and
//! optionally a CSC (pull) and/or a COO (edge-centric iteration). Methods
//! use the paper's names (`get_num_vertices`, `get_edges`,
//! `get_dest_vertex`, `get_edge_weight`) alongside idiomatic trait impls.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::traits::{EdgeWeights, GraphBase, InEdgeWeights, InNeighbors, OutNeighbors};
use crate::types::{EdgeId, EdgeValue, VertexId};

/// A graph holding one or more simultaneous underlying representations.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph<W: EdgeValue = f32> {
    csr: Csr<W>,
    csc: Option<Csr<W>>,
    coo: Option<Coo<W>>,
}

impl<W: EdgeValue> Graph<W> {
    /// Wraps an existing CSR as a push-only graph.
    pub fn from_csr(csr: Csr<W>) -> Self {
        Graph {
            csr,
            csc: None,
            coo: None,
        }
    }

    /// Compiles a push-only graph from an edge list.
    pub fn from_coo(coo: &Coo<W>) -> Self {
        Graph::from_csr(Csr::from_coo(coo))
    }

    /// Materializes the CSC (transposed CSR) enabling pull traversal.
    /// Idempotent. Returns `self` for builder-style chaining.
    pub fn with_csc(mut self) -> Self {
        self.ensure_csc();
        self
    }

    /// Materializes the COO enabling edge-centric iteration. Idempotent.
    pub fn with_coo(mut self) -> Self {
        self.ensure_coo();
        self
    }

    /// Builds the CSC in place if absent.
    pub fn ensure_csc(&mut self) {
        if self.csc.is_none() {
            self.csc = Some(self.csr.transposed());
        }
    }

    /// Builds the COO in place if absent.
    pub fn ensure_coo(&mut self) {
        if self.coo.is_none() {
            self.coo = Some(self.csr.to_coo());
        }
    }

    /// The push (CSR) representation. Always present.
    #[inline]
    pub fn csr(&self) -> &Csr<W> {
        &self.csr
    }

    /// The pull (CSC) representation, if materialized.
    #[inline]
    pub fn csc(&self) -> Option<&Csr<W>> {
        self.csc.as_ref()
    }

    /// The pull representation, panicking with a remediation hint if it was
    /// never materialized — pull operators call this.
    #[inline]
    pub fn require_csc(&self) -> &Csr<W> {
        self.csc
            .as_ref()
            .expect("pull traversal needs a CSC: build the graph with .with_csc()")
    }

    /// The edge-centric (COO) representation, if materialized.
    #[inline]
    pub fn coo(&self) -> Option<&Coo<W>> {
        self.coo.as_ref()
    }

    // ---- Paper-named API (Listing 1) ------------------------------------

    /// Number of vertices (`get_num_vertices` in Listing 4).
    #[inline]
    pub fn get_num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn get_num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Edge-id range of `v`'s out-edges (`get_edges(v)` in Listing 3).
    #[inline]
    pub fn get_edges(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        self.csr.edge_range(v)
    }

    /// Destination of edge `e` (`get_dest_vertex(e)` in Listing 3).
    #[inline]
    pub fn get_dest_vertex(&self, e: EdgeId) -> VertexId {
        self.csr.edge_dest(e)
    }

    /// Source of edge `e` (binary search; see [`Csr::edge_src`]).
    #[inline]
    pub fn get_source_vertex(&self, e: EdgeId) -> VertexId {
        self.csr.edge_src(e)
    }

    /// Weight of edge `e` (`get_edge_weight(e)` in Listing 1).
    #[inline]
    pub fn get_edge_weight(&self, e: EdgeId) -> W {
        self.csr.edge_value(e)
    }
}

impl<W: EdgeValue> GraphBase for Graph<W> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }
    #[inline]
    fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }
}

impl<W: EdgeValue> OutNeighbors for Graph<W> {
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.csr.degree(v)
    }
    #[inline]
    fn out_edges(&self, v: VertexId) -> std::ops::Range<EdgeId> {
        self.csr.edge_range(v)
    }
    #[inline]
    fn edge_dest(&self, e: EdgeId) -> VertexId {
        self.csr.edge_dest(e)
    }
    #[inline]
    fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.csr.neighbors(v)
    }
}

impl<W: EdgeValue> InNeighbors for Graph<W> {
    #[inline]
    fn in_degree(&self, v: VertexId) -> usize {
        self.require_csc().degree(v)
    }
    #[inline]
    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.require_csc().neighbors(v)
    }
}

impl<W: EdgeValue> EdgeWeights<W> for Graph<W> {
    #[inline]
    fn edge_weight(&self, e: EdgeId) -> W {
        self.csr.edge_value(e)
    }
    #[inline]
    fn out_neighbor_weights(&self, v: VertexId) -> &[W] {
        self.csr.neighbor_values(v)
    }
}

impl<W: EdgeValue> InEdgeWeights<W> for Graph<W> {
    #[inline]
    fn in_neighbor_weights(&self, v: VertexId) -> &[W] {
        self.require_csc().neighbor_values(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph<f32> {
        Graph::from_coo(&Coo::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]))
    }

    #[test]
    fn paper_api_reads_through_csr() {
        let g = triangle();
        assert_eq!(g.get_num_vertices(), 3);
        assert_eq!(g.get_num_edges(), 3);
        let e = g.get_edges(1).start;
        assert_eq!(g.get_dest_vertex(e), 2);
        assert_eq!(g.get_edge_weight(e), 2.0);
        assert_eq!(g.get_source_vertex(e), 1);
    }

    #[test]
    fn csc_is_lazy_and_idempotent() {
        let g = triangle();
        assert!(g.csc().is_none());
        let g = g.with_csc().with_csc();
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.in_neighbor_weights(0), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "with_csc")]
    fn pull_without_csc_gives_actionable_panic() {
        triangle().in_neighbors(0);
    }

    #[test]
    fn coo_view_matches_csr_content() {
        let g = triangle().with_coo();
        let coo = g.coo().unwrap();
        assert_eq!(coo.num_edges(), 3);
        assert!(coo.iter().any(|(s, d, w)| (s, d, w) == (2, 0, 3.0)));
    }

    #[test]
    fn in_and_out_degrees_are_consistent_on_a_cycle() {
        let g = triangle().with_csc();
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }
}
