//! Derived structural properties: degree statistics, symmetry.
//!
//! The experiment harness keys its workload characterization on these
//! (degree skew is what separates the RMAT regime from the mesh regime).

use crate::csr::Csr;
use crate::types::{EdgeValue, VertexId};

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: usize,
    /// Largest out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: usize,
    /// max/mean — a cheap skew indicator (≫1 for power-law graphs,
    /// ≈1 for regular meshes).
    pub skew: f64,
}

/// Computes out-degree statistics of a CSR.
pub fn degree_stats<W: EdgeValue>(g: &Csr<W>) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            skew: 0.0,
        };
    }
    let mut degs: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    let mean = g.num_edges() as f64 / n as f64;
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean,
        median: degs[n / 2],
        skew: if mean > 0.0 {
            degs[n - 1] as f64 / mean
        } else {
            0.0
        },
    }
}

/// True if for every edge `u → v` the reverse `v → u` exists (structure
/// only; weights are not compared).
pub fn is_symmetric<W: EdgeValue>(g: &Csr<W>) -> bool {
    (0..g.num_vertices() as VertexId).all(|u| g.neighbors(u).iter().all(|&v| g.has_edge(v, u)))
}

/// Number of self-loop edges.
pub fn count_self_loops<W: EdgeValue>(g: &Csr<W>) -> usize {
    (0..g.num_vertices() as VertexId)
        .map(|u| g.neighbors(u).iter().filter(|&&v| v == u).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn stats_on_a_star() {
        // 0 -> {1..=4}: hub degree 4, leaves 0.
        let g = Csr::from_coo(&Coo::from_edges(5, (1..5).map(|i| (0, i as VertexId, ()))));
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 0.8);
        assert_eq!(s.median, 0);
        assert!(s.skew > 4.9 && s.skew < 5.1);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = Csr::<()>::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Csr::from_coo(&Coo::from_edges(2, [(0, 1, ()), (1, 0, ())]));
        let asym = Csr::from_coo(&Coo::from_edges(2, [(0, 1, ())]));
        assert!(is_symmetric(&sym));
        assert!(!is_symmetric(&asym));
    }

    #[test]
    fn self_loop_count() {
        let g = Csr::from_coo(&Coo::from_edges(3, [(0, 0, ()), (1, 2, ()), (2, 2, ())]));
        assert_eq!(count_self_loops(&g), 2);
    }
}
