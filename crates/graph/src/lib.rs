//! `essentials-graph` — the graph data structure (essential component 1).
//!
//! The paper (§IV-A) exploits the graph/sparse-matrix duality *inside* the
//! native-graph approach: the underlying storage is a sparse-matrix format
//! (CSR, CSC, COO) but the API is graph-focused (Listing 1). A single
//! [`Graph`] may hold **several representations simultaneously** — the
//! paper's "variadic inheritance" — e.g. CSR for push traversal and CSC for
//! pull traversal, "at the cost of memory space".
//!
//! Layout of this crate:
//!
//! * [`types`] — vertex/edge identifier types and the edge-value trait.
//! * [`coo`] — coordinate (edge-list) storage; the builder's interchange
//!   format.
//! * [`csr`] — compressed sparse row; the push-traversal representation.
//!   CSC is the CSR of the transpose and needs no separate type.
//! * [`ccsr`] — bit-coded (delta/length-class) compressed CSR with streaming
//!   decoders: smaller edge streams for bandwidth-bound traversals and the
//!   representation the mmap-backed out-of-core loader maps from disk.
//! * [`graph`] — the multi-representation container with the Listing-1 API.
//! * [`builder`] — edge-list ingestion: dedup, self-loop removal,
//!   symmetrization, validation.
//! * [`traits`] — capability traits ([`traits::GraphBase`],
//!   [`traits::OutNeighbors`], [`traits::InNeighbors`], …) so operators,
//!   partitioned graphs, and subgraphs interoperate.
//! * [`properties`] — derived structural properties (degree statistics,
//!   symmetry checks).

#![warn(missing_docs)]

pub mod builder;
pub mod ccsr;
pub mod coo;
pub mod csr;
pub mod graph;
pub mod properties;
pub mod relabel;
pub mod subgraph;
pub mod traits;
pub mod types;

pub use builder::GraphBuilder;
pub use ccsr::{
    Ccsr, CcsrView, CompressedGraph, CompressedGraphView, DecodeEdgeWeights, DecodeInEdgeWeights,
    DecodeInNeighbors, DecodeOutNeighbors, NeighborDecoder,
};
pub use coo::Coo;
pub use csr::Csr;
pub use graph::Graph;
pub use relabel::{relabel_by_degree, Relabeling};
pub use subgraph::{ego_network, induced_subgraph, Subgraph};
pub use traits::{EdgeWeights, GraphBase, InEdgeWeights, InNeighbors, OutNeighbors};
pub use types::{EdgeId, EdgeValue, VertexId, INVALID_VERTEX};
