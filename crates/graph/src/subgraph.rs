//! Induced subgraph extraction — the building block for per-part local
//! views, ego networks, and core decompositions' reconstruction checks.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::types::{EdgeValue, VertexId, INVALID_VERTEX};

/// The subgraph induced by a vertex subset, with a compact local id space.
pub struct Subgraph<W: EdgeValue> {
    /// The induced graph over local ids `0..members.len()`.
    pub graph: Csr<W>,
    /// `members[local]` = global id (ascending).
    pub members: Vec<VertexId>,
}

impl<W: EdgeValue> Subgraph<W> {
    /// Maps a local id back to the global id.
    #[inline]
    pub fn to_global(&self, local: VertexId) -> VertexId {
        self.members[local as usize]
    }
}

/// Extracts the subgraph induced by `vertices` (duplicates ignored; order
/// normalized to ascending). An edge survives iff **both** endpoints are
/// in the set; weights are preserved.
pub fn induced_subgraph<W: EdgeValue>(g: &Csr<W>, vertices: &[VertexId]) -> Subgraph<W> {
    let mut members: Vec<VertexId> = vertices.to_vec();
    members.sort_unstable();
    members.dedup();
    // Global -> local lookup (dense; graphs here are bounded by memory
    // anyway and this keeps extraction O(n + m_sub)).
    let mut local = vec![INVALID_VERTEX; g.num_vertices()];
    for (li, &v) in members.iter().enumerate() {
        local[v as usize] = li as VertexId;
    }
    let mut coo = Coo::new(members.len());
    for (li, &v) in members.iter().enumerate() {
        for e in g.edge_range(v) {
            let d = g.edge_dest(e);
            let ld = local[d as usize];
            if ld != INVALID_VERTEX {
                coo.push(li as VertexId, ld, g.edge_value(e));
            }
        }
    }
    Subgraph {
        graph: Csr::from_coo(&coo),
        members,
    }
}

/// The ego network of `center`: the subgraph induced by the center plus
/// its out-neighbors.
pub fn ego_network<W: EdgeValue>(g: &Csr<W>, center: VertexId) -> Subgraph<W> {
    let mut verts = vec![center];
    verts.extend_from_slice(g.neighbors(center));
    induced_subgraph(g, &verts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<f32> {
        // 0→1 (1.0), 1→2 (2.0), 2→3 (3.0), 3→0 (4.0), 0→2 (5.0)
        Csr::from_coo(&Coo::from_edges(
            4,
            [
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 0, 4.0),
                (0, 2, 5.0),
            ],
        ))
    }

    #[test]
    fn keeps_only_internal_edges_with_weights() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.members, vec![0, 1, 2]);
        assert_eq!(sub.graph.num_edges(), 3); // 0→1, 1→2, 0→2 survive
        assert_eq!(sub.graph.neighbor_values(0), &[1.0, 5.0]);
        assert!(!sub.graph.has_edge(2, 0)); // 2→3 dropped with 3
    }

    #[test]
    fn local_ids_are_compact_and_mapped() {
        let g = sample();
        let sub = induced_subgraph(&g, &[3, 1]); // unsorted input
        assert_eq!(sub.members, vec![1, 3]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.graph.num_edges(), 0); // 1→2 and 3→0 both leave the set
        assert_eq!(sub.to_global(1), 3);
    }

    #[test]
    fn duplicates_in_selection_are_ignored() {
        let g = sample();
        let sub = induced_subgraph(&g, &[2, 2, 3, 3]);
        assert_eq!(sub.members, vec![2, 3]);
        assert_eq!(sub.graph.num_edges(), 1); // 2→3
    }

    #[test]
    fn full_selection_is_identity_up_to_ids() {
        let g = sample();
        let sub = induced_subgraph(&g, &[0, 1, 2, 3]);
        assert_eq!(&sub.graph, &g);
    }

    #[test]
    fn empty_selection() {
        let g = sample();
        let sub = induced_subgraph(&g, &[]);
        assert_eq!(sub.graph.num_vertices(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn ego_network_of_a_hub() {
        let g = sample();
        let ego = ego_network(&g, 0);
        // 0's out-neighbors are {1, 2}: members {0,1,2}, edges 0→1, 0→2, 1→2.
        assert_eq!(ego.members, vec![0, 1, 2]);
        assert_eq!(ego.graph.num_edges(), 3);
    }
}
