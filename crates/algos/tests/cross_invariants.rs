//! Cross-algorithm invariants: relationships between *different*
//! algorithms' outputs that must hold on any graph. These catch bugs that
//! per-algorithm oracles can miss (a consistent-but-wrong pair of results).

use essentials_algos::{bfs, cc, color, kcore, sssp, sswp, tc};
use essentials_core::prelude::*;
use essentials_gen as gen;
use essentials_graph::relabel::relabel_by_degree;

fn sym(coo: &Coo<()>) -> Graph<()> {
    GraphBuilder::from_coo(coo.clone())
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .with_csc()
        .build()
}

#[test]
fn every_triangle_vertex_has_core_at_least_two() {
    let ctx = Context::new(2);
    let g = sym(&gen::gnm(80, 600, 3));
    let cores = kcore::kcore_peel(execution::par, &ctx, &g).core;
    let lcc = tc::clustering_coefficients(execution::par, &ctx, &g);
    for v in g.vertices() {
        if lcc[v as usize] > 0.0 {
            assert!(
                cores[v as usize] >= 2,
                "v{v} is in a triangle but has core {}",
                cores[v as usize]
            );
        }
    }
}

#[test]
fn chromatic_number_at_least_three_when_triangles_exist() {
    let ctx = Context::new(2);
    let g = sym(&gen::gnm(60, 500, 5));
    let tri = tc::triangle_count(execution::par, &ctx, &g, false).triangles;
    let coloring = color::color_greedy(execution::par, &ctx, &g);
    assert!(color::verify_coloring(&g, &coloring.color));
    if tri > 0 {
        assert!(coloring.num_colors >= 3);
    }
}

#[test]
fn bfs_reachability_equals_component_membership_on_symmetric_graphs() {
    let ctx = Context::new(2);
    let g = sym(&gen::gnm(120, 150, 7)); // sparse => multiple components
    let comp = cc::cc_label_propagation(execution::par, &ctx, &g).comp;
    let source: VertexId = 0;
    let levels = bfs::bfs(execution::par, &ctx, &g, source).level;
    for v in g.vertices() {
        let same_comp = comp[v as usize] == comp[source as usize];
        let reached = levels[v as usize] != bfs::UNVISITED;
        assert_eq!(same_comp, reached, "v{v}");
    }
}

#[test]
fn sssp_distance_bounds_bfs_hops_times_max_weight() {
    let ctx = Context::new(2);
    let coo = {
        let mut c = gen::gnm(100, 800, 2);
        c.symmetrize();
        c.sort_and_dedup();
        c
    };
    let g = Graph::from_coo(&gen::hash_weights(&coo, 0.5, 2.0, 3));
    let dist = sssp::sssp(execution::par, &ctx, &g, 0).dist;
    let hops = bfs::bfs(execution::par, &ctx, &g, 0).level;
    for v in g.vertices() {
        let (d, h) = (dist[v as usize], hops[v as usize]);
        assert_eq!(d.is_finite(), h != bfs::UNVISITED);
        if d.is_finite() {
            // min_w * hops <= dist <= max_w * hops
            assert!(d <= 2.0 * h as f32 + 1e-4, "v{v}: {d} vs {h} hops");
            assert!(d >= 0.5 * h as f32 - 1e-4, "v{v}: {d} vs {h} hops");
        }
    }
}

#[test]
fn widest_path_width_never_below_bottleneck_of_shortest_path() {
    // The widest path is at least as wide as the specific path SSSP found.
    let ctx = Context::new(2);
    let coo = gen::gnm(80, 600, 9);
    let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 5.0, 4));
    let tree = essentials_algos::paths::sssp_with_parents(execution::par, &ctx, &g, 0);
    let width = sswp::sswp(execution::par, &ctx, &g, 0).width;
    for v in g.vertices() {
        if v == 0 || tree.dist[v as usize].is_infinite() {
            continue;
        }
        let path = essentials_algos::paths::extract_path(&tree.parent, 0, v).unwrap();
        let mut bottleneck = f32::INFINITY;
        for pair in path.windows(2) {
            let mut best = 0.0f32;
            for e in g.get_edges(pair[0]) {
                if g.get_dest_vertex(e) == pair[1] {
                    best = best.max(g.get_edge_weight(e));
                }
            }
            bottleneck = bottleneck.min(best);
        }
        assert!(
            width[v as usize] >= bottleneck - 1e-5,
            "v{v}: widest {} < shortest-path bottleneck {bottleneck}",
            width[v as usize]
        );
    }
}

#[test]
fn results_are_invariant_under_degree_relabeling() {
    let ctx = Context::new(2);
    let g = sym(&gen::rmat(8, 6, gen::RmatParams::default(), 6));
    let (relabeled_csr, map) = relabel_by_degree(g.csr());
    let rg = Graph::from_csr(relabeled_csr).with_csc();

    // Triangle count is a graph invariant.
    let t1 = tc::triangle_count(execution::par, &ctx, &g, false).triangles;
    let t2 = tc::triangle_count(execution::par, &ctx, &rg, false).triangles;
    assert_eq!(t1, t2);

    // Core numbers permute with the relabeling.
    let c1 = kcore::kcore_peel(execution::par, &ctx, &g).core;
    let c2 = kcore::kcore_peel(execution::par, &ctx, &rg).core;
    assert_eq!(map.permute(&c1), c2);

    // Component *partition* is preserved (labels change, classes don't).
    let k1 = cc::cc_label_propagation(execution::par, &ctx, &g).comp;
    let k2 = cc::cc_label_propagation(execution::par, &ctx, &rg).comp;
    for u in g.vertices() {
        for v in g.vertices() {
            let same_before = k1[u as usize] == k1[v as usize];
            let same_after =
                k2[map.new_of[u as usize] as usize] == k2[map.new_of[v as usize] as usize];
            assert_eq!(same_before, same_after);
        }
    }
}

#[test]
fn max_core_bounds_follow_edge_count() {
    // A graph with m undirected edges cannot contain a (k+1)-clique-like
    // core with k(k+1)/2 > m.
    let ctx = Context::new(2);
    let g = sym(&gen::gnm(100, 400, 1));
    let kmax = kcore::kcore_peel(execution::par, &ctx, &g)
        .core
        .into_iter()
        .max()
        .unwrap_or(0) as usize;
    let undirected_m = g.get_num_edges() / 2;
    assert!(kmax * (kmax + 1) / 2 <= undirected_m);
}
