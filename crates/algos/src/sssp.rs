//! Single-source shortest paths — the paper's worked example (Listing 4).
//!
//! [`sssp`] is the Rust port of Listing 4: a bulk-synchronous iterative
//! loop whose body is one `neighbors_expand` with an `atomic::min` distance
//! relaxation in the user lambda. Beyond the listing, this module provides
//! the asynchronous variant the paper's §III-A promises ([`sssp_async`] —
//! same relaxation, no barriers, queue quiescence as convergence), a
//! [`delta_stepping`] middle ground, and two sequential baselines
//! ([`dijkstra`], [`bellman_ford`]) used as oracles and speedup
//! denominators. [`verify_sssp`] checks the relaxation fixpoint directly.
//!
//! All variants require non-negative weights (validated NaN-free at graph
//! build time; negative weights are rejected by debug assertion here).

use essentials_core::prelude::*;
use essentials_parallel::atomics::{AtomicF32, Counter};
use essentials_parallel::run_async;
use std::sync::atomic::Ordering;

/// Distances plus run metadata.
#[derive(Debug, Clone)]
pub struct SsspResult {
    /// `dist[v]` = shortest distance from the source, `f32::INFINITY` if
    /// unreachable.
    pub dist: Vec<f32>,
    /// Loop statistics (iterations = supersteps for BSP; 1 for async).
    pub stats: LoopStats,
    /// Edge relaxations attempted (machine-independent work measure).
    pub relaxations: usize,
}

fn init_dist(n: usize, source: VertexId) -> Vec<AtomicF32> {
    (0..n)
        .map(|i| {
            AtomicF32::new(if i == source as usize {
                0.0
            } else {
                f32::INFINITY
            })
        })
        .collect()
}

fn unwrap_dist(dist: Vec<AtomicF32>) -> Vec<f32> {
    dist.into_iter().map(AtomicF32::into_inner).collect()
}

fn check_weights(g: &Graph<f32>) {
    debug_assert!(
        g.csr().values().iter().all(|&w| w >= 0.0),
        "SSSP requires non-negative weights"
    );
}

/// Parallel SSSP, structured exactly as the paper's Listing 4:
/// initialize distances → seed the frontier with the source → iterate
/// `neighbors_expand` with the atomic-min relaxation lambda until the
/// frontier is empty.
///
/// One addition over the listing: duplicate activations are eliminated as
/// they are pushed (`neighbors_expand_unique`, Gunrock's filter stage fused
/// into the advance). Without dedup, duplicate activations compound across
/// iterations and the frontier can grow combinatorially; with it, results
/// are identical and work is bounded — and fusing it avoids a second pass
/// over the output. Spent frontiers are recycled through the context, so
/// steady-state iterations allocate nothing.
///
/// ```
/// use essentials_core::prelude::*;
/// use essentials_algos::sssp::sssp;
///
/// let g: Graph<f32> = GraphBuilder::new(3)
///     .edges([(0, 1, 2.0), (1, 2, 2.0), (0, 2, 5.0)])
///     .build();
/// let ctx = Context::new(2);
/// let r = sssp(execution::par, &ctx, &g, 0);
/// assert_eq!(r.dist, vec![0.0, 2.0, 4.0]); // via 1, not the 5.0 edge
/// ```
pub fn sssp<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
) -> SsspResult {
    match try_sssp(policy, ctx, g, source) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`sssp`]: budget/fault hooks at iteration and chunk
/// boundaries, worker panics captured as [`ExecError::WorkerPanic`], and
/// full context reusability after any error — including the fused dedup
/// bitmap, which is swept clean on the error path so the next
/// `neighbors_expand_unique` on the same context starts pristine.
pub fn try_sssp<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
) -> Result<SsspResult, ExecError> {
    check_weights(g);
    let n = g.get_num_vertices();
    // Initialize data.
    let dist = init_dist(n, source);
    let relaxations = Counter::new();
    let mut f = SparseFrontier::new();
    f.add_vertex(source);
    // Main-loop.
    let (_, stats) = Enactor::for_ctx(ctx).try_run(f, |_, f| {
        // Expand the frontier; duplicates are filtered during the push.
        let out = try_neighbors_expand_unique(
            policy,
            ctx,
            g,
            &f,
            // User-defined condition for SSSP.
            |src: VertexId, dst: VertexId, _edge: EdgeId, weight: f32| {
                relaxations.add(1);
                let new_d = dist[src as usize].load(Ordering::Acquire) + weight;
                // atomic::min atomically updates the distances vector at dst
                // with the minimum of new_d or its current value, then
                // returns the old value.
                let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
                new_d < curr_d
            },
        )?;
        ctx.recycle_frontier(f);
        Ok(out)
    })?;
    Ok(SsspResult {
        dist: unwrap_dist(dist),
        stats,
        relaxations: relaxations.get(),
    })
}

/// SSSP routed through the core adaptive advance engine: the same
/// `atomic::min` relaxation as [`sssp`], expressed in both its push view
/// (frontier scatters over out-edges) and its pull view (candidates gather
/// over in-edges), with [`advance_adaptive`] choosing the direction and
/// frontier representation per iteration. Requires the CSC (`with_csc`).
///
/// Relaxation is monotone and order-independent, so whatever mix of
/// directions the policy picks, the distances converge to the same least
/// fixpoint as the fixed-direction variants. No early exit (every in-edge
/// must be seen), and no settle mask (a vertex re-activates whenever a
/// shorter path arrives).
pub fn sssp_adaptive<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
) -> SsspResult {
    check_weights(g);
    let n = g.get_num_vertices();
    let dist = init_dist(n, source);
    let relaxations = Counter::new();
    let mut engine = AdaptiveAdvance::new(
        g,
        AdaptiveConfig {
            policy: DirectionPolicy::default(),
            early_exit: false,
            settle: false,
            bins: BlockedConfig::default(),
        },
    );
    let mut trace = Vec::new();
    let mut frontier = VertexFrontier::Sparse(SparseFrontier::single(source));
    while frontier.len() > 0 {
        frontier = advance_adaptive(
            policy,
            ctx,
            g,
            &mut engine,
            frontier,
            |src, dst, _e, w: f32| {
                relaxations.add(1);
                let new_d = dist[src as usize].load(Ordering::Acquire) + w;
                let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
                new_d < curr_d
            },
            |_dst| true,
            |src, dst, w: f32| {
                relaxations.add(1);
                let new_d = dist[src as usize].load(Ordering::Acquire) + w;
                let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
                new_d < curr_d
            },
        );
        trace.push(frontier.len());
    }
    engine.finish(ctx);
    SsspResult {
        dist: unwrap_dist(dist),
        stats: LoopStats {
            iterations: engine.iterations(),
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        relaxations: relaxations.get(),
    }
}

/// [`sssp_adaptive`] over byte-coded compressed adjacency, dispatched
/// through [`advance_adaptive_compressed`]. The relaxation is the same
/// monotone `fetch_min`, and decoders yield destinations in the same
/// ascending order as the raw slices, so distances are bit-identical to
/// [`sssp_adaptive`] (`tests/differential.rs`). Accepts any graph exposing
/// the decode traits with `f32` weights (an in-memory [`CompressedGraph`]
/// or a view over an mmapped container).
pub fn sssp_adaptive_compressed<P, G>(
    policy: P,
    ctx: &Context,
    g: &G,
    source: VertexId,
) -> SsspResult
where
    P: ExecutionPolicy,
    G: DecodeEdgeWeights<f32> + DecodeInEdgeWeights<f32> + Sync,
{
    let n = g.num_vertices();
    let dist = init_dist(n, source);
    let relaxations = Counter::new();
    let mut engine = AdaptiveAdvance::new(
        g,
        AdaptiveConfig {
            policy: DirectionPolicy::default(),
            early_exit: false,
            settle: false,
            bins: BlockedConfig::default(),
        },
    );
    let mut trace = Vec::new();
    let mut frontier = VertexFrontier::Sparse(SparseFrontier::single(source));
    while frontier.len() > 0 {
        frontier = advance_adaptive_compressed(
            policy,
            ctx,
            g,
            &mut engine,
            frontier,
            |src, dst, _e, w: f32| {
                relaxations.add(1);
                let new_d = dist[src as usize].load(Ordering::Acquire) + w;
                let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
                new_d < curr_d
            },
            |_dst| true,
            |src, dst, w: f32| {
                relaxations.add(1);
                let new_d = dist[src as usize].load(Ordering::Acquire) + w;
                let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
                new_d < curr_d
            },
        );
        trace.push(frontier.len());
    }
    engine.finish(ctx);
    SsspResult {
        dist: unwrap_dist(dist),
        stats: LoopStats {
            iterations: engine.iterations(),
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        relaxations: relaxations.get(),
    }
}

/// Asynchronous SSSP (§III-A's `par_nosync` timing model applied to the
/// whole algorithm): active vertices drain through the work-queue engine; a
/// successful relaxation pushes the destination; the run ends at queue
/// quiescence. No barriers anywhere. Generally more total relaxations than
/// BSP (stale distances propagate), but every relaxation is monotone, so
/// the fixpoint — and thus the result — is identical.
pub fn sssp_async(ctx: &Context, g: &Graph<f32>, source: VertexId) -> SsspResult {
    check_weights(g);
    let n = g.get_num_vertices();
    let dist = init_dist(n, source);
    let relaxations = Counter::new();
    let async_stats = run_async(ctx.pool(), vec![source], |v: VertexId, pusher| {
        let dv = dist[v as usize].load(Ordering::Acquire);
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e);
            let w = g.get_edge_weight(e);
            relaxations.add(1);
            let new_d = dv + w;
            let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
            if new_d < curr_d {
                pusher.push(dst);
            }
        }
    });
    let stats = LoopStats {
        iterations: 1,
        frontier_trace: vec![async_stats.processed],
        hit_iteration_cap: false,
    };
    SsspResult {
        dist: unwrap_dist(dist),
        stats,
        relaxations: relaxations.get(),
    }
}

/// Δ-stepping (Meyer & Sanders): vertices are bucketed by `⌊dist/Δ⌋`;
/// buckets settle in order. *Light* edges (w < Δ) of a bucket are relaxed
/// repeatedly until it stabilizes; *heavy* edges once per settled bucket.
/// Interpolates between Dijkstra (Δ→0) and Bellman-Ford (Δ→∞); the inner
/// relaxations reuse the same policy-parallel `neighbors_expand` as
/// Listing 4.
pub fn delta_stepping<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
    delta: f32,
) -> SsspResult {
    check_weights(g);
    assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
    let n = g.get_num_vertices();
    let dist = init_dist(n, source);
    let relaxations = Counter::new();
    let mut iterations = 0usize;
    let mut trace = Vec::new();

    let bucket_of =
        |v: VertexId| -> usize { (dist[v as usize].load(Ordering::Acquire) / delta) as usize };
    // Bucket storage recycles through a local free-list (drained buckets
    // park there; fresh buckets draw from it), and the per-round lists
    // below cycle through the context's pools, so once every bucket index
    // has been seen the loop runs without touching the allocator.
    let mut buckets: Vec<Vec<VertexId>> = vec![vec![source]];
    let mut spare: Vec<Vec<VertexId>> = Vec::new();
    let stash = |buckets: &mut Vec<Vec<VertexId>>, spare: &mut Vec<Vec<VertexId>>, v: VertexId| {
        let b = bucket_of(v);
        if b >= buckets.len() {
            buckets.resize_with(b + 1, Vec::new);
        }
        if buckets[b].capacity() == 0 {
            if let Some(recycled) = spare.pop() {
                buckets[b] = recycled;
            }
        }
        buckets[b].push(v);
    };

    // Relax only edges on the requested side of the light/heavy split;
    // dedup is fused into the push.
    let relax = |f: SparseFrontier, light: bool| -> SparseFrontier {
        let out = neighbors_expand_unique(policy, ctx, g, &f, |src, dst, _e, w| {
            if (w < delta) != light {
                return false;
            }
            relaxations.add(1);
            let new_d = dist[src as usize].load(Ordering::Acquire) + w;
            let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
            new_d < curr_d
        });
        ctx.recycle_frontier(f);
        out
    };

    // `active` and `settled` keep their capacity across buckets. The
    // storage `active` hands to `relax` returns through the context's
    // frontier pool, and each round's output frontier donates its storage
    // back (`into_vec`), closing the cycle.
    let mut active: Vec<VertexId> = ctx.take_u32_buffer();
    let mut settled: Vec<VertexId> = ctx.take_u32_buffer();
    let mut bi = 0;
    while bi < buckets.len() {
        if buckets[bi].is_empty() {
            bi += 1;
            continue;
        }
        settled.clear();
        // Light phase: iterate until no vertex re-enters bucket bi. Skip
        // stale entries (vertices whose distance improved into an earlier,
        // already-settled bucket keep their result; re-relaxing is merely
        // redundant, so filter on exact membership).
        let mut drained = std::mem::take(&mut buckets[bi]);
        active.clear();
        active.extend(drained.iter().copied().filter(|&v| bucket_of(v) == bi));
        drained.clear();
        spare.push(drained);
        active.sort_unstable();
        active.dedup();
        while !active.is_empty() {
            iterations += 1;
            trace.push(active.len());
            settled.extend(active.iter().copied());
            let improved = relax(SparseFrontier::from_vec(std::mem::take(&mut active)), true);
            // Partition in place: vertices still in this bucket become the
            // next round's active list (reusing the output frontier's
            // storage); the rest stash into their new buckets.
            let mut buf = improved.into_vec();
            buf.retain(|&v| {
                if bucket_of(v) == bi {
                    true
                } else {
                    stash(&mut buckets, &mut spare, v);
                    false
                }
            });
            active = buf;
        }
        // Heavy phase: once over everything settled in this bucket.
        settled.sort_unstable();
        settled.dedup();
        let heavy_improved = relax(
            SparseFrontier::from_vec(std::mem::take(&mut settled)),
            false,
        );
        let mut buf = heavy_improved.into_vec();
        for &v in &buf {
            stash(&mut buckets, &mut spare, v);
        }
        buf.clear();
        settled = buf;
        bi += 1;
    }
    for b in buckets.into_iter().chain(spare) {
        ctx.recycle_u32_buffer(b);
    }
    ctx.recycle_u32_buffer(active);
    ctx.recycle_u32_buffer(settled);

    SsspResult {
        dist: unwrap_dist(dist),
        stats: LoopStats {
            iterations,
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        relaxations: relaxations.get(),
    }
}

/// Edge-centric SSSP (§III-C's "set of active edges" frontier): each
/// iteration first materializes the active *edge* set of the improved
/// vertices (`expand_to_edges`), then relaxes those edges
/// (`advance_edges`). Same fixpoint as the vertex-centric Listing 4;
/// exists to exercise the edge-frontier half of the abstraction with a
/// real algorithm, and as the natural shape for edge-parallel hardware.
pub fn sssp_edge_centric<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
) -> SsspResult {
    check_weights(g);
    let n = g.get_num_vertices();
    let dist = init_dist(n, source);
    let relaxations = Counter::new();
    let (_, stats) = Enactor::for_ctx(ctx).run(SparseFrontier::single(source), |_, f| {
        // Vertex frontier -> edge frontier -> relax -> vertex frontier.
        let active_edges = expand_to_edges(policy, ctx, g, &f);
        let out = advance_edges(policy, ctx, g, &active_edges, |src, dst, _e, w| {
            relaxations.add(1);
            let new_d = dist[src as usize].load(Ordering::Acquire) + w;
            let curr_d = dist[dst as usize].fetch_min(new_d, Ordering::AcqRel);
            new_d < curr_d
        });
        ctx.recycle_frontier(f);
        uniquify_with_bitmap(policy, ctx, &out, n)
    });
    SsspResult {
        dist: unwrap_dist(dist),
        stats,
        relaxations: relaxations.get(),
    }
}

/// Sequential Dijkstra with a binary heap — the classical oracle.
pub fn dijkstra(g: &Graph<f32>, source: VertexId) -> SsspResult {
    check_weights(g);
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.get_num_vertices();
    let mut dist = vec![f32::INFINITY; n];
    let mut relaxations = 0usize;
    let mut heap: BinaryHeap<Reverse<(ordered::F32, VertexId)>> = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((ordered::F32(0.0), source)));
    let mut settled = 0usize;
    while let Some(Reverse((ordered::F32(d), v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        settled += 1;
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e);
            let w = g.get_edge_weight(e);
            relaxations += 1;
            let nd = d + w;
            if nd < dist[dst as usize] {
                dist[dst as usize] = nd;
                heap.push(Reverse((ordered::F32(nd), dst)));
            }
        }
    }
    SsspResult {
        dist,
        stats: LoopStats {
            iterations: settled,
            frontier_trace: Vec::new(),
            hit_iteration_cap: false,
        },
        relaxations,
    }
}

/// Sequential Bellman-Ford over the edge list — the O(nm) baseline,
/// included as the second oracle (structurally closest to what the BSP
/// variant computes per superstep).
pub fn bellman_ford(g: &Graph<f32>, source: VertexId) -> SsspResult {
    check_weights(g);
    let n = g.get_num_vertices();
    let mut dist = vec![f32::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut relaxations = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for v in 0..n as VertexId {
            let dv = dist[v as usize];
            if dv.is_infinite() {
                continue;
            }
            for e in g.get_edges(v) {
                let dst = g.get_dest_vertex(e);
                let w = g.get_edge_weight(e);
                relaxations += 1;
                if dv + w < dist[dst as usize] {
                    dist[dst as usize] = dv + w;
                    changed = true;
                }
            }
        }
        if !changed || rounds > n {
            break;
        }
    }
    SsspResult {
        dist,
        stats: LoopStats {
            iterations: rounds,
            frontier_trace: Vec::new(),
            hit_iteration_cap: false,
        },
        relaxations,
    }
}

/// Verifies the relaxation fixpoint directly (independent of any oracle):
/// `dist[source] == 0`; every edge satisfies `dist[dst] ≤ dist[src] + w`
/// (within `eps` of float slack); and every finite-distance vertex other
/// than the source has an in-edge that *witnesses* its distance.
pub fn verify_sssp(g: &Graph<f32>, source: VertexId, dist: &[f32], eps: f32) -> bool {
    if dist.len() != g.get_num_vertices() || dist[source as usize] != 0.0 {
        return false;
    }
    // No edge is over-relaxed.
    for v in g.vertices() {
        if dist[v as usize].is_infinite() {
            continue;
        }
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e);
            if dist[dst as usize] > dist[v as usize] + g.get_edge_weight(e) + eps {
                return false;
            }
        }
    }
    // Every finite distance is witnessed. (Scan edges once, tracking the
    // best witness per destination.)
    let mut witnessed = vec![false; dist.len()];
    witnessed[source as usize] = true;
    for v in g.vertices() {
        if dist[v as usize].is_infinite() {
            continue;
        }
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e) as usize;
            if (dist[v as usize] + g.get_edge_weight(e) - dist[dst]).abs() <= eps {
                witnessed[dst] = true;
            }
        }
    }
    dist.iter()
        .zip(&witnessed)
        .all(|(&d, &w)| d.is_infinite() || w)
}

/// Total-ordering wrapper for non-NaN f32 (keys in Dijkstra's heap).
mod ordered {
    /// An f32 known not to be NaN, with total ordering.
    #[derive(PartialEq, Clone, Copy, Debug)]
    pub struct F32(pub f32);
    impl Eq for F32 {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl PartialOrd for F32 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F32 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("NaN in ordered::F32")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn dist_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(&x, &y)| {
                (x.is_infinite() && y.is_infinite()) || (x - y).abs() <= 1e-4 * (1.0 + x.abs())
            })
    }

    fn test_graph() -> Graph<f32> {
        // Weighted RMAT with a grid mixed in via distinct tests.
        let coo = gen::rmat(9, 8, gen::RmatParams::default(), 11);
        Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, 5))
    }

    #[test]
    fn adaptive_sssp_matches_fixed_push_exactly() {
        let ctx = Context::new(4);
        // R-MAT (skewed, where pull may fire) and a grid (stays push).
        let rmat = Graph::from_coo(&gen::uniform_weights(
            &gen::rmat(9, 8, gen::RmatParams::default(), 11),
            0.1,
            2.0,
            5,
        ))
        .with_csc();
        let grid =
            Graph::from_coo(&gen::uniform_weights(&gen::grid2d(20, 20), 0.1, 2.0, 9)).with_csc();
        for g in [&rmat, &grid] {
            let fixed = sssp(execution::par, &ctx, g, 0);
            let adaptive = sssp_adaptive(execution::par, &ctx, g, 0);
            // Monotone fetch_min: bit-identical least fixpoint, any mix of
            // directions.
            assert_eq!(adaptive.dist, fixed.dist);
        }
    }

    #[test]
    fn listing4_sssp_matches_dijkstra_on_diamond() {
        let g = Graph::from_coo(&Coo::from_edges(
            4,
            [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 1.0)],
        ));
        let ctx = Context::new(2);
        let r = sssp(execution::par, &ctx, &g, 0);
        assert_eq!(r.dist, vec![0.0, 1.0, 4.0, 3.0]);
        assert!(verify_sssp(&g, 0, &r.dist, 1e-6));
    }

    #[test]
    fn all_variants_agree_with_dijkstra_on_rmat() {
        let g = test_graph();
        let ctx = Context::new(4);
        let oracle = dijkstra(&g, 0);
        assert!(verify_sssp(&g, 0, &oracle.dist, 1e-4));
        let bsp_seq = sssp(execution::seq, &ctx, &g, 0);
        let bsp_par = sssp(execution::par, &ctx, &g, 0);
        let bsp_nosync = sssp(execution::par_nosync, &ctx, &g, 0);
        let asynch = sssp_async(&ctx, &g, 0);
        let delta = delta_stepping(execution::par, &ctx, &g, 0, 0.5);
        let bf = bellman_ford(&g, 0);
        let edge_centric = sssp_edge_centric(execution::par, &ctx, &g, 0);
        for (name, r) in [
            ("bsp_seq", &bsp_seq),
            ("bsp_par", &bsp_par),
            ("bsp_nosync", &bsp_nosync),
            ("async", &asynch),
            ("delta", &delta),
            ("bellman_ford", &bf),
            ("edge_centric", &edge_centric),
        ] {
            assert!(dist_eq(&oracle.dist, &r.dist), "{name} diverged");
            assert!(verify_sssp(&g, 0, &r.dist, 1e-3), "{name} fails fixpoint");
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        // Two disconnected edges: 0->1, 2->3.
        let g = Graph::from_coo(&Coo::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]));
        let ctx = Context::sequential();
        let r = sssp(execution::par, &ctx, &g, 0);
        assert_eq!(r.dist[1], 1.0);
        assert!(r.dist[2].is_infinite());
        assert!(r.dist[3].is_infinite());
        assert!(verify_sssp(&g, 0, &r.dist, 1e-6));
    }

    #[test]
    fn zero_weight_edges_are_fine() {
        let g = Graph::from_coo(&Coo::from_edges(3, [(0, 1, 0.0), (1, 2, 0.0)]));
        let ctx = Context::new(2);
        let r = sssp(execution::par, &ctx, &g, 0);
        assert_eq!(r.dist, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::from_coo(&Coo::<f32>::new(1));
        let ctx = Context::sequential();
        let r = sssp(execution::par, &ctx, &g, 0);
        assert_eq!(r.dist, vec![0.0]);
        assert_eq!(r.stats.iterations, 1); // one expand of the seed, then empty
    }

    #[test]
    fn grid_distances_match_manhattan_with_unit_weights() {
        let coo = gen::grid2d(8, 8);
        let g = Graph::from_coo(&gen::unit_weights(&coo));
        let ctx = Context::new(2);
        let r = sssp(execution::par, &ctx, &g, 0);
        // Vertex (r, c) is at Manhattan distance r + c from (0, 0).
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(r.dist[row * 8 + col], (row + col) as f32);
            }
        }
    }

    #[test]
    fn bsp_iteration_count_tracks_graph_depth() {
        let coo = gen::path(50);
        let g = Graph::from_coo(&gen::unit_weights(&coo));
        let ctx = Context::sequential();
        let r = sssp(execution::seq, &ctx, &g, 0);
        // A 50-vertex path needs 50 supersteps (49 hops + final empty check).
        assert_eq!(r.stats.iterations, 50);
    }

    #[test]
    fn delta_extremes_agree() {
        let g = test_graph();
        let ctx = Context::new(2);
        let tiny = delta_stepping(execution::par, &ctx, &g, 0, 0.05);
        let huge = delta_stepping(execution::par, &ctx, &g, 0, 1e9);
        assert!(dist_eq(&tiny.dist, &huge.dist));
    }

    #[test]
    fn verifier_rejects_wrong_distances() {
        let g = Graph::from_coo(&Coo::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]));
        assert!(!verify_sssp(&g, 0, &[0.0, 1.0, 5.0], 1e-6)); // over-estimate
        assert!(!verify_sssp(&g, 0, &[0.0, 0.5, 1.5], 1e-6)); // unwitnessed
        assert!(verify_sssp(&g, 0, &[0.0, 1.0, 2.0], 1e-6));
    }
}
