//! `essentials-algos` — the algorithm suite built on the essentials
//! abstraction, with sequential baselines and verifiers.
//!
//! Every parallel algorithm here is composed from the four essential
//! components (graph + frontier + operators + enacted loop) and comes with:
//!
//! * a **sequential baseline** implementing the textbook algorithm
//!   directly (the correctness oracle and the speedup denominator);
//! * a **verifier** checking solution validity independently of how it was
//!   computed (fixpoint conditions, not output equality, wherever the
//!   solution is non-unique);
//! * **work counters** (edges relaxed, iterations) — the machine-
//!   independent quantities the experiment harness reports alongside time.
//!
//! The roster follows the Gunrock essentials suite, CPU edition: traversal
//! ([`bfs`], [`multi_source`], [`sssp`], [`sswp`]), fixpoint ranking
//! ([`pagerank`], [`hits`]),
//! structure ([`cc`], [`kcore`], [`tc`], [`mst`], [`color`], [`bc`],
//! [`closeness`]), and
//! the linear-algebra kernel ([`spmv`]).

#![warn(missing_docs)]

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod closeness;
pub mod color;
pub mod diameter;
pub mod hits;
pub mod kcore;
pub mod mst;
pub mod multi_source;
pub mod pagerank;
pub mod paths;
pub mod random_walk;
pub mod spgemm;
pub mod spmv;
pub mod sssp;
pub mod sswp;
pub mod tc;
