//! PageRank — the fixpoint-ranking workload, in both traversal directions.
//!
//! The pull formulation gathers `rank[u]/outdeg(u)` over in-edges (CSC);
//! the push formulation scatters contributions over out-edges with atomic
//! adds (CSR). Same fixpoint, different memory behaviour — the §III-C
//! comparison for a full-frontier algorithm, measured in E3. Dangling
//! vertices (out-degree 0) redistribute their mass uniformly, keeping the
//! rank vector a probability distribution.

use essentials_core::prelude::*;
use essentials_parallel::atomics::AtomicF64;
use std::sync::atomic::Ordering;

/// PageRank output.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Rank per vertex; sums to 1.
    pub rank: Vec<f64>,
    /// Iterations to convergence.
    pub stats: LoopStats,
    /// Final L1 change (below tolerance unless the cap was hit).
    pub final_error: f64,
}

/// Configuration shared by both formulations.
#[derive(Debug, Clone, Copy)]
pub struct PrConfig {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Convergence threshold on the L1 norm of the per-iteration change.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PrConfig {
    fn default() -> Self {
        PrConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// Consecutive residual rises tolerated before a power-iteration loop is
/// declared divergent by [`ResidualWatchdog`].
pub(crate) const RESIDUAL_RISE_STREAK: usize = 5;

/// Convergence watchdog for power-iteration fixpoints (PageRank, HITS):
/// a non-finite residual (NaN / ±inf — e.g. a damping factor > 1 that
/// overflowed, or NaN inputs) fails immediately; a residual that *rises*
/// for [`RESIDUAL_RISE_STREAK`] consecutive iterations fails as divergent
/// without waiting for the iteration cap. A converging power iteration
/// shrinks its residual geometrically, so a sustained rise is a reliable
/// divergence signal while transient float wobble is tolerated.
pub(crate) struct ResidualWatchdog {
    prev: f64,
    rising: usize,
}

impl ResidualWatchdog {
    pub(crate) fn new() -> Self {
        ResidualWatchdog {
            prev: f64::INFINITY,
            rising: 0,
        }
    }

    pub(crate) fn check(&mut self, iteration: usize, err: f64) -> Result<(), ExecError> {
        if !err.is_finite() {
            return Err(ExecError::Diverged {
                iteration,
                detail: format!("non-finite residual {err}"),
            });
        }
        if err > self.prev {
            self.rising += 1;
            if self.rising >= RESIDUAL_RISE_STREAK {
                return Err(ExecError::Diverged {
                    iteration,
                    detail: format!(
                        "residual rose for {RESIDUAL_RISE_STREAK} consecutive iterations (now {err:.3e})"
                    ),
                });
            }
        } else {
            self.rising = 0;
        }
        self.prev = err;
        Ok(())
    }
}

/// Pull (gather) PageRank over the CSC. Requires `with_csc`.
pub fn pagerank_pull<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
) -> PageRankResult {
    match try_pagerank_pull(policy, ctx, g, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`pagerank_pull`]: the run budget is checked at iteration
/// boundaries, and a convergence watchdog turns a non-finite or
/// persistently rising residual into [`ExecError::Diverged`] instead of
/// spinning to the iteration cap on garbage.
pub fn try_pagerank_pull<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
) -> Result<PageRankResult, ExecError> {
    let n = g.get_num_vertices();
    if n == 0 {
        return Ok(PageRankResult {
            rank: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        });
    }
    let rank = vec![1.0 / n as f64; n];
    let inv_deg = take_inv_out_degrees(policy, ctx, g);
    let mut next = take_zeroed_f64(ctx, n);
    let mut final_error = f64::INFINITY;
    let mut watchdog = ResidualWatchdog::new();
    let result = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(rank, |iter, r, progress| {
            // Every vertex is updated each iteration — the fixpoint loop's
            // natural work unit for the bench trace.
            progress.report_work(n);
            // Mass of dangling vertices, redistributed uniformly.
            let dangling: f64 = sum_dangling(policy, ctx, g, r);
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
            let (r_now, inv) = (&*r, &inv_deg);
            fill_indexed_into(policy, ctx, &mut next, |v| {
                let v = v as VertexId;
                let gathered: f64 = g
                    .in_neighbors(v)
                    .iter()
                    .map(|&u| r_now[u as usize] * inv[u as usize])
                    .sum();
                base + cfg.damping * gathered
            });
            let err: f64 = l1_diff(policy, ctx, r, &next);
            std::mem::swap(r, &mut next);
            final_error = err;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        });
    ctx.recycle_f64_buffer(next);
    ctx.recycle_f64_buffer(inv_deg);
    let (rank, stats) = result?;
    Ok(PageRankResult {
        rank,
        stats,
        final_error,
    })
}

/// Pull (gather) PageRank over byte-coded compressed in-adjacency: the
/// exact loop of [`try_pagerank_pull`] with the CSC slice scan replaced by
/// [`NeighborDecoder`] streams. Decoders yield in-neighbors in the same
/// ascending order as the CSC columns, so the per-vertex f64 gather sums
/// in the same order and ranks are **bit-identical** to [`pagerank_pull`]
/// (`tests/differential.rs`). Accepts any graph exposing both decode
/// sides — an in-memory [`CompressedGraph`] built from a `with_csc`
/// graph, or a [`CompressedGraphView`] over an mmapped container.
pub fn pagerank_pull_compressed<P, G>(
    policy: P,
    ctx: &Context,
    g: &G,
    cfg: PrConfig,
) -> PageRankResult
where
    P: ExecutionPolicy,
    G: DecodeOutNeighbors + DecodeInNeighbors + Sync,
{
    match try_pagerank_pull_compressed(policy, ctx, g, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`pagerank_pull_compressed`] — same budget/watchdog contract
/// as [`try_pagerank_pull`].
pub fn try_pagerank_pull_compressed<P, G>(
    policy: P,
    ctx: &Context,
    g: &G,
    cfg: PrConfig,
) -> Result<PageRankResult, ExecError>
where
    P: ExecutionPolicy,
    G: DecodeOutNeighbors + DecodeInNeighbors + Sync,
{
    let n = g.num_vertices();
    if n == 0 {
        return Ok(PageRankResult {
            rank: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        });
    }
    let rank = vec![1.0 / n as f64; n];
    let mut inv_deg = take_zeroed_f64(ctx, n);
    fill_indexed_into(policy, ctx, &mut inv_deg, |u| {
        let d = g.out_degree(u as VertexId);
        if d == 0 {
            0.0
        } else {
            (d as f64).recip()
        }
    });
    let mut next = take_zeroed_f64(ctx, n);
    let mut final_error = f64::INFINITY;
    let mut watchdog = ResidualWatchdog::new();
    let result = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(rank, |iter, r, progress| {
            progress.report_work(n);
            let dangling: f64 = sum_f64_over(policy, ctx, n, |v| {
                if g.out_degree(v as VertexId) == 0 {
                    r[v]
                } else {
                    0.0
                }
            });
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
            let (r_now, inv) = (&*r, &inv_deg);
            fill_indexed_into(policy, ctx, &mut next, |v| {
                let v = v as VertexId;
                // Decode order is ascending — the CSC column order — so the
                // f64 sum associates identically to the raw pull.
                let gathered: f64 = g
                    .in_decoder(v)
                    .map(|u| r_now[u as usize] * inv[u as usize])
                    .sum();
                base + cfg.damping * gathered
            });
            let err: f64 = l1_diff(policy, ctx, r, &next);
            std::mem::swap(r, &mut next);
            final_error = err;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        });
    ctx.recycle_f64_buffer(next);
    ctx.recycle_f64_buffer(inv_deg);
    let (rank, stats) = result?;
    Ok(PageRankResult {
        rank,
        stats,
        final_error,
    })
}

/// Pull PageRank routed through the propagation-blocked gather
/// ([`BlockedGather`]): contributions are binned by destination cache
/// block once per run, then every iteration streams the fixed layout —
/// two sequential passes instead of the CSC scan's per-edge random rank
/// reads. Needs only the CSR (the layout is built from out-edges), and the
/// per-destination accumulation order matches the CSC gather term for
/// term, so results agree with [`pagerank_pull`] to the last few ulps
/// (≤ 1e-12 L∞ in the differential suite) and are bit-identical across
/// thread counts.
pub fn pagerank_pull_blocked<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
    bins: BlockedConfig,
) -> PageRankResult {
    match try_pagerank_pull_blocked(policy, ctx, g, cfg, bins) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`pagerank_pull_blocked`] — same budget/watchdog contract as
/// [`try_pagerank_pull`].
pub fn try_pagerank_pull_blocked<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
    bins: BlockedConfig,
) -> Result<PageRankResult, ExecError> {
    let n = g.get_num_vertices();
    if n == 0 {
        return Ok(PageRankResult {
            rank: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        });
    }
    let rank = vec![1.0 / n as f64; n];
    let inv_deg = take_inv_out_degrees(policy, ctx, g);
    let mut next = take_zeroed_f64(ctx, n);
    let mut gatherer = BlockedGather::over_out_edges(policy, ctx, g, bins);
    let mut final_error = f64::INFINITY;
    let mut watchdog = ResidualWatchdog::new();
    let result = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(rank, |iter, r, progress| {
            progress.report_work(n);
            let dangling: f64 = sum_dangling(policy, ctx, g, r);
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
            let (r_now, inv) = (&*r, &inv_deg);
            gatherer.gather(
                policy,
                ctx,
                |u| r_now[u] * inv[u],
                |_, gathered| base + cfg.damping * gathered,
                &mut next,
            );
            let err: f64 = l1_diff(policy, ctx, r, &next);
            std::mem::swap(r, &mut next);
            final_error = err;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        });
    gatherer.finish(ctx);
    ctx.recycle_f64_buffer(next);
    ctx.recycle_f64_buffer(inv_deg);
    let (rank, stats) = result?;
    Ok(PageRankResult {
        rank,
        stats,
        final_error,
    })
}

/// Push (scatter) PageRank over the CSR: each vertex adds its contribution
/// to every out-neighbor's accumulator with an atomic f64 add.
pub fn pagerank_push<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
) -> PageRankResult {
    match try_pagerank_push(policy, ctx, g, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`pagerank_push`] — same watchdog and budget contract as
/// [`try_pagerank_pull`]; the scatter additionally routes through
/// [`try_foreach_vertex`], so budget/fault hooks also fire at chunk
/// boundaries inside an iteration.
pub fn try_pagerank_push<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
) -> Result<PageRankResult, ExecError> {
    let n = g.get_num_vertices();
    if n == 0 {
        return Ok(PageRankResult {
            rank: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        });
    }
    let rank = vec![1.0 / n as f64; n];
    let mut final_error = f64::INFINITY;
    let mut watchdog = ResidualWatchdog::new();
    let (rank, stats) = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(rank, |iter, r, progress| {
            progress.report_work(n);
            let dangling: f64 = sum_dangling(policy, ctx, g, r);
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
            let acc: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
            try_foreach_vertex(policy, ctx, n, |v| {
                let deg = g.out_degree(v);
                if deg == 0 {
                    return;
                }
                let share = r[v as usize] / deg as f64;
                for e in g.get_edges(v) {
                    acc[g.get_dest_vertex(e) as usize].fetch_add(share, Ordering::AcqRel);
                }
            })?;
            let next: Vec<f64> = acc
                .into_iter()
                .map(|a| base + cfg.damping * a.into_inner())
                .collect();
            let err = l1_diff(policy, ctx, r, &next);
            *r = next;
            final_error = err;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        })?;
    Ok(PageRankResult {
        rank,
        stats,
        final_error,
    })
}

/// PageRank with the traversal direction chosen per iteration by a
/// [`DirectionPolicy`] — the full-frontier fixpoint's form of routing
/// through the adaptive engine. PageRank has no real frontier (every vertex
/// updates every iteration), so the policy sees density 1 and picks the
/// direction alone: the α rule fires immediately (the "frontier's" edge
/// mass is the whole graph) and the β rule keeps it pulling, so with
/// default parameters every iteration gathers — making the result
/// bit-identical to [`pagerank_pull`]. Extreme parameters (e.g. a `beta`
/// of 0-behavior via huge values) fall back to the push scatter, whose
/// fixpoint agrees within tolerance. Decisions are emitted as
/// `DirectionEvent`s. Requires `with_csc`.
pub fn pagerank_adaptive<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: PrConfig,
    dir_policy: DirectionPolicy,
) -> PageRankResult {
    use essentials_core::obs::DirectionEvent;
    use essentials_core::operators::direction::PolicyInputs;

    let n = g.get_num_vertices();
    let m = g.get_num_edges();
    if n == 0 {
        return PageRankResult {
            rank: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        };
    }
    let rank = vec![1.0 / n as f64; n];
    let inv_deg = take_inv_out_degrees(policy, ctx, g);
    let mut final_error = f64::INFINITY;
    let mut current = Direction::Push;
    let mut since_switch = usize::MAX;
    let (rank, stats) = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .run_until(rank, |iter, r, progress| {
            progress.report_work(n);
            let dir = dir_policy.decide(&PolicyInputs {
                n,
                frontier_len: n,
                frontier_edges: m,
                // The full frontier never retires edges; every iteration
                // re-traverses the whole graph.
                unexplored_edges: m,
                growing: iter == 0,
                current,
                since_switch,
                compressed: false,
            });
            if dir.is_pull() != current.is_pull() {
                since_switch = 1;
            } else {
                since_switch = since_switch.saturating_add(1);
            }
            current = dir;
            if let Some(sink) = ctx.obs() {
                sink.on_direction(&DirectionEvent {
                    iteration: iter,
                    frontier_len: n,
                    frontier_edges: m,
                    unexplored_edges: m,
                    growing: iter == 0,
                    pull: dir.is_pull(),
                });
            }

            let dangling: f64 = sum_dangling(policy, ctx, g, r);
            let base = (1.0 - cfg.damping) / n as f64 + cfg.damping * dangling / n as f64;
            let next: Vec<f64> = if dir.is_pull() {
                // Gather over in-edges — same arithmetic as
                // `pagerank_pull` (reciprocal multiply included), so a
                // pull-deciding policy is bit-identical to the fixed pull.
                let (r_now, inv) = (&*r, &inv_deg);
                fill_indexed(policy, ctx, n, |v| {
                    let v = v as VertexId;
                    let gathered: f64 = g
                        .in_neighbors(v)
                        .iter()
                        .map(|&u| r_now[u as usize] * inv[u as usize])
                        .sum();
                    base + cfg.damping * gathered
                })
            } else {
                // Scatter over out-edges — same body as `pagerank_push`.
                let acc: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
                foreach_vertex(policy, ctx, n, |v| {
                    let deg = g.out_degree(v);
                    if deg == 0 {
                        return;
                    }
                    let share = r[v as usize] / deg as f64;
                    for e in g.get_edges(v) {
                        acc[g.get_dest_vertex(e) as usize].fetch_add(share, Ordering::AcqRel);
                    }
                });
                acc.into_iter()
                    .map(|a| base + cfg.damping * a.into_inner())
                    .collect()
            };
            let err: f64 = l1_diff(policy, ctx, r, &next);
            *r = next;
            final_error = err;
            err < cfg.tolerance
        });
    ctx.recycle_f64_buffer(inv_deg);
    PageRankResult {
        rank,
        stats,
        final_error,
    }
}

/// A pooled buffer holding `1/out_degree(u)` (0 for dangling vertices),
/// computed once per run so the per-edge divide in every gather becomes a
/// multiply. Return it with `Context::recycle_f64_buffer`.
fn take_inv_out_degrees<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> Vec<f64> {
    let mut inv = take_zeroed_f64(ctx, g.get_num_vertices());
    fill_indexed_into(policy, ctx, &mut inv, |u| {
        let d = g.out_degree(u as VertexId);
        if d == 0 {
            0.0
        } else {
            (d as f64).recip()
        }
    });
    inv
}

/// A pooled `f64` buffer resized (zero-filled) to length `n`.
pub(crate) fn take_zeroed_f64(ctx: &Context, n: usize) -> Vec<f64> {
    let mut v = ctx.take_f64_buffer();
    v.resize(n, 0.0); // alloc-ok: once per run, pooled across runs
    v
}

fn sum_dangling<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    r: &[f64],
) -> f64 {
    crate::pagerank::sum_f64_over(policy, ctx, r.len(), |v| {
        if g.out_degree(v as VertexId) == 0 {
            r[v]
        } else {
            0.0
        }
    })
}

fn l1_diff<P: ExecutionPolicy>(policy: P, ctx: &Context, a: &[f64], b: &[f64]) -> f64 {
    sum_f64_over(policy, ctx, a.len(), |i| (a[i] - b[i]).abs())
}

fn sum_f64_over<P: ExecutionPolicy, M: Fn(usize) -> f64 + Sync>(
    policy: P,
    ctx: &Context,
    n: usize,
    map: M,
) -> f64 {
    essentials_core::operators::reduce::sum_f64(policy, ctx, n, map)
}

/// Personalized PageRank: the random surfer teleports back to the `seeds`
/// set instead of to a uniform vertex (the `(1-d)` mass concentrates
/// there), ranking vertices by proximity to the seeds. Pull-direction
/// gather; requires `with_csc`.
pub fn personalized_pagerank<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    seeds: &[VertexId],
    cfg: PrConfig,
) -> PageRankResult {
    let n = g.get_num_vertices();
    assert!(!seeds.is_empty() || n == 0, "PPR needs at least one seed");
    if n == 0 {
        return PageRankResult {
            rank: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        };
    }
    // Teleport distribution: uniform over the seed set.
    let mut teleport = vec![0.0f64; n];
    for &s in seeds {
        teleport[s as usize] += 1.0 / seeds.len() as f64;
    }
    let teleport = &teleport;
    let rank = teleport.clone();
    let inv_deg = take_inv_out_degrees(policy, ctx, g);
    let mut next = take_zeroed_f64(ctx, n);
    let mut final_error = f64::INFINITY;
    let (rank, stats) = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .run_until(rank, |_, r, progress| {
            progress.report_work(n);
            let dangling: f64 = sum_dangling(policy, ctx, g, r);
            let (r_now, inv) = (&*r, &inv_deg);
            fill_indexed_into(policy, ctx, &mut next, |v| {
                let vid = v as VertexId;
                let gathered: f64 = g
                    .in_neighbors(vid)
                    .iter()
                    .map(|&u| r_now[u as usize] * inv[u as usize])
                    .sum();
                // Dangling mass also returns to the seeds in PPR.
                (1.0 - cfg.damping) * teleport[v]
                    + cfg.damping * (gathered + dangling * teleport[v])
            });
            let err = l1_diff(policy, ctx, r, &next);
            std::mem::swap(r, &mut next);
            final_error = err;
            err < cfg.tolerance
        });
    ctx.recycle_f64_buffer(next);
    ctx.recycle_f64_buffer(inv_deg);
    PageRankResult {
        rank,
        stats,
        final_error,
    }
}

/// Sequential reference PageRank (same semantics as the pull version).
pub fn pagerank_sequential<W: EdgeValue>(g: &Graph<W>, cfg: PrConfig) -> PageRankResult {
    let ctx = Context::sequential();
    pagerank_pull(execution::seq, &ctx, g, cfg)
}

/// Checks that `rank` is a probability distribution (sums to 1) and is a
/// fixpoint of the PageRank equation within `tol` per vertex.
pub fn verify_pagerank<W: EdgeValue>(g: &Graph<W>, rank: &[f64], damping: f64, tol: f64) -> bool {
    let n = g.get_num_vertices();
    if rank.len() != n {
        return false;
    }
    if n == 0 {
        return true;
    }
    let total: f64 = rank.iter().sum();
    if (total - 1.0).abs() > 1e-6 {
        return false;
    }
    let dangling: f64 = g
        .vertices()
        .filter(|&v| g.out_degree(v) == 0)
        .map(|v| rank[v as usize])
        .sum();
    let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
    g.vertices().all(|v| {
        let gathered: f64 = g
            .in_neighbors(v)
            .iter()
            .map(|&u| rank[u as usize] / g.out_degree(u) as f64)
            .sum();
        (rank[v as usize] - (base + damping * gathered)).abs() <= tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn push_and_pull_converge_to_the_same_fixpoint() {
        let g = Graph::from_coo(&gen::rmat(8, 8, gen::RmatParams::default(), 2)).with_csc();
        let ctx = Context::new(4);
        let cfg = PrConfig::default();
        let pull = pagerank_pull(execution::par, &ctx, &g, cfg);
        let push = pagerank_push(execution::par, &ctx, &g, cfg);
        assert!(close(&pull.rank, &push.rank, 1e-7));
        assert!(verify_pagerank(&g, &pull.rank, cfg.damping, 1e-7));
        assert!(verify_pagerank(&g, &push.rank, cfg.damping, 1e-7));
    }

    #[test]
    fn adaptive_pagerank_is_bit_identical_to_pull() {
        let g = Graph::from_coo(&gen::rmat(8, 8, gen::RmatParams::default(), 2)).with_csc();
        let ctx = Context::new(4);
        let cfg = PrConfig {
            max_iterations: 30,
            tolerance: 0.0,
            ..PrConfig::default()
        };
        let pull = pagerank_pull(execution::par, &ctx, &g, cfg);
        let adaptive = pagerank_adaptive(execution::par, &ctx, &g, cfg, DirectionPolicy::default());
        // Density 1 → the policy pulls every iteration → same float ops in
        // the same order.
        assert_eq!(adaptive.rank, pull.rank);
    }

    #[test]
    fn blocked_pull_matches_pull_to_last_ulps() {
        let g = Graph::from_coo(&gen::rmat(9, 8, gen::RmatParams::default(), 5)).with_csc();
        let ctx = Context::new(4);
        let cfg = PrConfig {
            max_iterations: 25,
            tolerance: 0.0,
            ..PrConfig::default()
        };
        let pull = pagerank_pull(execution::par, &ctx, &g, cfg);
        // Tiny bins stress multi-bin flushing even at test scale.
        let bins = BlockedConfig { bin_bits: 6 };
        let blocked = pagerank_pull_blocked(execution::par, &ctx, &g, cfg, bins);
        assert_eq!(blocked.stats.iterations, pull.stats.iterations);
        let linf = pull
            .rank
            .iter()
            .zip(&blocked.rank)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(linf <= 1e-12, "L∞ {linf}");
        assert!(verify_pagerank(&g, &blocked.rank, cfg.damping, 1e-7));
    }

    #[test]
    fn blocked_pull_is_bit_identical_across_thread_counts() {
        let g = Graph::from_coo(&gen::rmat(8, 8, gen::RmatParams::default(), 11)).with_csc();
        let cfg = PrConfig {
            max_iterations: 15,
            tolerance: 0.0,
            ..PrConfig::default()
        };
        let bins = BlockedConfig { bin_bits: 5 };
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1, 2, 8] {
            let ctx = Context::new(threads);
            let r = pagerank_pull_blocked(execution::par, &ctx, &g, cfg, bins);
            match &reference {
                None => reference = Some(r.rank),
                Some(want) => assert_eq!(&r.rank, want, "threads={threads}"),
            }
        }
    }

    #[test]
    fn policy_equivalence() {
        let g = Graph::from_coo(&gen::gnm(200, 1500, 7)).with_csc();
        let ctx = Context::new(4);
        let cfg = PrConfig::default();
        let seq = pagerank_pull(execution::seq, &ctx, &g, cfg);
        let par = pagerank_pull(execution::par, &ctx, &g, cfg);
        assert!(close(&seq.rank, &par.rank, 1e-9));
    }

    #[test]
    fn cycle_gives_uniform_rank() {
        let g = Graph::from_coo(&gen::cycle(10)).with_csc();
        let ctx = Context::sequential();
        let r = pagerank_pull(execution::seq, &ctx, &g, PrConfig::default());
        for &x in &r.rank {
            assert!((x - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn star_hub_receives_most_rank() {
        // Directed spokes into vertex 0.
        let mut coo = Coo::<()>::new(11);
        for v in 1..=10 {
            coo.push(v, 0, ());
        }
        let g = Graph::from_coo(&coo).with_csc();
        let ctx = Context::sequential();
        let r = pagerank_pull(execution::seq, &ctx, &g, PrConfig::default());
        assert!(r.rank[0] > r.rank[1] * 3.0);
        assert!(verify_pagerank(&g, &r.rank, 0.85, 1e-7));
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // 0 -> 1, 1 dangling.
        let g = Graph::from_coo(&Coo::<()>::from_edges(2, [(0, 1, ())])).with_csc();
        let ctx = Context::sequential();
        let r = pagerank_pull(execution::seq, &ctx, &g, PrConfig::default());
        assert!((r.rank.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(verify_pagerank(&g, &r.rank, 0.85, 1e-7));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_coo(&Coo::<()>::new(0)).with_csc();
        let ctx = Context::sequential();
        let r = pagerank_pull(execution::seq, &ctx, &g, PrConfig::default());
        assert!(r.rank.is_empty());
    }

    #[test]
    fn ppr_concentrates_rank_near_the_seed() {
        // Two cliques joined by one bridge edge: PPR seeded in clique A
        // must rank every A-vertex above every B-vertex.
        let mut coo = Coo::<()>::new(10);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    coo.push(a, b, ());
                    coo.push(a + 5, b + 5, ());
                }
            }
        }
        coo.push(4, 5, ());
        coo.push(5, 4, ());
        let g = Graph::from_coo(&coo).with_csc();
        let ctx = Context::new(2);
        let r = personalized_pagerank(execution::par, &ctx, &g, &[0], PrConfig::default());
        let min_a = (0..5).map(|v| r.rank[v]).fold(f64::INFINITY, f64::min);
        let max_b = (5..10).map(|v| r.rank[v]).fold(0.0f64, f64::max);
        assert!(min_a > max_b, "A {min_a} vs B {max_b}");
        assert!((r.rank.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ppr_with_all_seeds_equals_global_pagerank() {
        let g = Graph::from_coo(&gen::gnm(100, 700, 3)).with_csc();
        let ctx = Context::new(2);
        let seeds: Vec<VertexId> = g.vertices().collect();
        let cfg = PrConfig::default();
        let ppr = personalized_pagerank(execution::par, &ctx, &g, &seeds, cfg);
        let pr = pagerank_pull(execution::par, &ctx, &g, cfg);
        for (a, b) in ppr.rank.iter().zip(&pr.rank) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn ppr_policy_equivalence() {
        let g = Graph::from_coo(&gen::gnm(80, 400, 9)).with_csc();
        let ctx = Context::new(4);
        let a = personalized_pagerank(execution::seq, &ctx, &g, &[3, 7], PrConfig::default());
        let b = personalized_pagerank(execution::par, &ctx, &g, &[3, 7], PrConfig::default());
        assert_eq!(a.rank, b.rank);
    }

    #[test]
    fn frontier_trace_has_one_entry_per_iteration() {
        // run_until used to leave frontier_trace empty; benches that plot
        // work-per-iteration rely on it being populated.
        let g = Graph::from_coo(&gen::gnm(200, 1500, 7)).with_csc();
        let ctx = Context::new(2);
        for r in [
            pagerank_pull(execution::par, &ctx, &g, PrConfig::default()),
            pagerank_push(execution::par, &ctx, &g, PrConfig::default()),
            personalized_pagerank(execution::par, &ctx, &g, &[0], PrConfig::default()),
        ] {
            assert!(r.stats.iterations > 0);
            assert_eq!(r.stats.frontier_trace.len(), r.stats.iterations);
            assert!(r.stats.frontier_trace.iter().all(|&w| w == 200));
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = Graph::from_coo(&gen::gnm(100, 500, 1)).with_csc();
        let ctx = Context::sequential();
        let cfg = PrConfig {
            max_iterations: 3,
            tolerance: 0.0,
            ..PrConfig::default()
        };
        let r = pagerank_pull(execution::seq, &ctx, &g, cfg);
        assert_eq!(r.stats.iterations, 3);
        assert!(r.stats.hit_iteration_cap);
    }
}
