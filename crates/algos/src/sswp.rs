//! Single-source widest path (maximum-bottleneck path) — the same Listing-4
//! skeleton as SSSP with the semiring swapped: relaxation is
//! `width[dst] = max(width[dst], min(width[src], w))`. Demonstrates that
//! the abstraction's operator + lambda split makes the *algorithm family*
//! a one-line change.

use essentials_core::prelude::*;
use essentials_parallel::atomics::AtomicF32;
use std::sync::atomic::Ordering;

/// Widest-path result.
#[derive(Debug, Clone)]
pub struct SswpResult {
    /// `width[v]` = maximum over paths of the minimum edge weight;
    /// `f32::INFINITY` at the source, 0 if unreachable.
    pub width: Vec<f32>,
    /// Loop statistics.
    pub stats: LoopStats,
}

/// BSP widest path (paper Listing 4 with a max-min lambda).
pub fn sswp<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
) -> SswpResult {
    let n = g.get_num_vertices();
    let width: Vec<AtomicF32> = (0..n)
        .map(|i| {
            AtomicF32::new(if i == source as usize {
                f32::INFINITY
            } else {
                0.0
            })
        })
        .collect();
    let (_, stats) = Enactor::for_ctx(ctx).run(SparseFrontier::single(source), |_, f| {
        let out = neighbors_expand(policy, ctx, g, &f, |src, dst, _e, w| {
            let cand = width[src as usize].load(Ordering::Acquire).min(w);
            width[dst as usize].fetch_max(cand, Ordering::AcqRel) < cand
        });
        uniquify_with_bitmap(policy, ctx, &out, n)
    });
    SswpResult {
        width: width.into_iter().map(AtomicF32::into_inner).collect(),
        stats,
    }
}

/// Sequential oracle: Dijkstra-style with a max-heap on widths.
pub fn sswp_sequential(g: &Graph<f32>, source: VertexId) -> SswpResult {
    use std::collections::BinaryHeap;
    let n = g.get_num_vertices();
    let mut width = vec![0.0f32; n];
    width[source as usize] = f32::INFINITY;
    let mut heap = BinaryHeap::new();
    heap.push((ordered(f32::INFINITY), source));
    while let Some((wv, v)) = heap.pop() {
        let wv = unordered(wv);
        if wv < width[v as usize] {
            continue;
        }
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e);
            let cand = wv.min(g.get_edge_weight(e));
            if cand > width[dst as usize] {
                width[dst as usize] = cand;
                heap.push((ordered(cand), dst));
            }
        }
    }
    SswpResult {
        width,
        stats: LoopStats::default(),
    }
}

fn ordered(x: f32) -> u32 {
    // Monotone map from non-negative f32 (incl. inf) to u32.
    x.to_bits()
}

fn unordered(b: u32) -> f32 {
    f32::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    #[test]
    fn picks_the_wider_of_two_routes() {
        // 0 -> 1 (wide 5) -> 3 (narrow 1); 0 -> 2 (3) -> 3 (3): best = 3.
        let g = Graph::from_coo(&Coo::from_edges(
            4,
            [(0, 1, 5.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 3.0)],
        ));
        let ctx = Context::new(2);
        let r = sswp(execution::par, &ctx, &g, 0);
        assert_eq!(r.width[3], 3.0);
        assert_eq!(r.width[1], 5.0);
        assert_eq!(r.width[0], f32::INFINITY);
    }

    #[test]
    fn matches_sequential_oracle_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [2, 7] {
            let coo = gen::gnm(200, 1200, seed);
            let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 9.0, seed));
            let par = sswp(execution::par, &ctx, &g, 0);
            let oracle = sswp_sequential(&g, 0);
            assert_eq!(par.width, oracle.width, "seed {seed}");
        }
    }

    #[test]
    fn unreachable_width_is_zero() {
        let g = Graph::from_coo(&Coo::from_edges(3, [(0, 1, 2.0)]));
        let ctx = Context::sequential();
        let r = sswp(execution::seq, &ctx, &g, 0);
        assert_eq!(r.width[2], 0.0);
    }

    #[test]
    fn policy_equivalence() {
        let coo = gen::rmat(8, 6, gen::RmatParams::default(), 9);
        let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.5, 4.0, 2));
        let ctx = Context::new(4);
        let a = sswp(execution::seq, &ctx, &g, 0).width;
        let b = sswp(execution::par, &ctx, &g, 0).width;
        let c = sswp(execution::par_nosync, &ctx, &g, 0).width;
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
