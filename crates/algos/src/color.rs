//! Greedy parallel graph coloring (Gebremedhin–Manne speculative style).
//!
//! Each round, every uncolored vertex speculatively takes the smallest
//! color unused by its neighbors (reading possibly-stale neighbor colors in
//! parallel); a conflict-detection pass then un-colors the lower-id
//! endpoint of any monochromatic edge and the frontier of conflicted
//! vertices re-runs. On a symmetric graph this terminates with a proper
//! coloring — the frontier/operator composition again.

use essentials_core::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// No color assigned yet.
pub const UNCOLORED: u32 = u32::MAX;

/// Coloring output.
#[derive(Debug, Clone)]
pub struct ColorResult {
    /// `color[v]` — proper: no edge is monochromatic.
    pub color: Vec<u32>,
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// Speculate/resolve rounds executed.
    pub rounds: usize,
}

/// Parallel speculative coloring of a **symmetric** graph (self-loops must
/// have been removed — a self-loop can never be properly colored).
pub fn color_greedy<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> ColorResult {
    let n = g.get_num_vertices();
    let color: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    let mut frontier: SparseFrontier = g.vertices().collect();
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        // Speculate: smallest color not seen among neighbors.
        foreach_active(policy, ctx, &frontier, |v| {
            let mut taken: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .map(|&u| color[u as usize].load(Ordering::Acquire))
                .filter(|&c| c != UNCOLORED)
                .collect();
            taken.sort_unstable();
            taken.dedup();
            let mut c = 0u32;
            for t in taken {
                if t == c {
                    c += 1;
                } else if t > c {
                    break;
                }
            }
            color[v as usize].store(c, Ordering::Release);
        });
        // Resolve: un-color the smaller endpoint of every conflict edge.
        let conflicted = neighbors_expand(policy, ctx, g, &frontier, |src, dst, _e, _w| {
            src < dst
                && color[src as usize].load(Ordering::Acquire)
                    == color[dst as usize].load(Ordering::Acquire)
                && {
                    color[src as usize].store(UNCOLORED, Ordering::Release);
                    false // activate src, not dst: handled below
                }
        });
        let _ = conflicted; // destinations never activate (condition false)
                            // Re-collect the vertices that lost their color.
        frontier = filter(policy, ctx, &frontier, |v| {
            color[v as usize].load(Ordering::Acquire) == UNCOLORED
        });
    }
    let color: Vec<u32> = color.into_iter().map(AtomicU32::into_inner).collect();
    let num_colors = color.iter().copied().max().map_or(0, |m| m as usize + 1);
    ColorResult {
        color,
        num_colors,
        rounds,
    }
}

/// Sequential greedy coloring in vertex order (the oracle for validity and
/// a quality yardstick: uses at most Δ+1 colors).
pub fn color_sequential<W: EdgeValue>(g: &Graph<W>) -> ColorResult {
    let n = g.get_num_vertices();
    let mut color = vec![UNCOLORED; n];
    for v in g.vertices() {
        let mut taken: Vec<u32> = g
            .out_neighbors(v)
            .iter()
            .map(|&u| color[u as usize])
            .filter(|&c| c != UNCOLORED)
            .collect();
        taken.sort_unstable();
        taken.dedup();
        let mut c = 0u32;
        for t in taken {
            if t == c {
                c += 1;
            } else if t > c {
                break;
            }
        }
        color[v as usize] = c;
    }
    let num_colors = color.iter().copied().max().map_or(0, |m| m as usize + 1);
    ColorResult {
        color,
        num_colors,
        rounds: 1,
    }
}

/// A coloring is valid iff every vertex is colored and no edge is
/// monochromatic.
pub fn verify_coloring<W: EdgeValue>(g: &Graph<W>, color: &[u32]) -> bool {
    color.len() == g.get_num_vertices()
        && color.iter().all(|&c| c != UNCOLORED)
        && g.vertices().all(|v| {
            g.out_neighbors(v)
                .iter()
                .all(|&u| u == v || color[u as usize] != color[v as usize])
        })
}

/// Max degree + 1: the guaranteed upper bound for greedy colorings.
pub fn greedy_bound<W: EdgeValue>(g: &Graph<W>) -> usize {
    g.vertices().map(|v| g.out_degree(v)).max().unwrap_or(0) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn sym(coo: &Coo<()>) -> Graph<()> {
        GraphBuilder::from_coo(coo.clone())
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .build()
    }

    #[test]
    fn colors_are_proper_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [3, 8] {
            let g = sym(&gen::gnm(200, 1200, seed));
            let r = color_greedy(execution::par, &ctx, &g);
            assert!(
                verify_coloring(&g, &r.color),
                "improper coloring, seed {seed}"
            );
            assert!(r.num_colors <= greedy_bound(&g));
        }
    }

    #[test]
    fn bipartite_grid_needs_two_colors() {
        let g = sym(&gen::grid2d(8, 8));
        let ctx = Context::new(2);
        let r = color_greedy(execution::par, &ctx, &g);
        assert!(verify_coloring(&g, &r.color));
        assert_eq!(r.num_colors, 2);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = Graph::from_coo(&gen::complete(7));
        let ctx = Context::new(2);
        let r = color_greedy(execution::par, &ctx, &g);
        assert!(verify_coloring(&g, &r.color));
        assert_eq!(r.num_colors, 7);
    }

    #[test]
    fn sequential_oracle_is_proper_and_bounded() {
        let g = sym(&gen::rmat(8, 4, gen::RmatParams::default(), 5));
        let r = color_sequential(&g);
        assert!(verify_coloring(&g, &r.color));
        assert!(r.num_colors <= greedy_bound(&g));
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = Graph::<()>::from_coo(&Coo::new(4));
        let ctx = Context::sequential();
        let r = color_greedy(execution::seq, &ctx, &g);
        assert!(r.color.iter().all(|&c| c == 0));
        assert_eq!(r.num_colors, 1);
    }
}
