//! Minimum spanning forest — Borůvka (parallel) vs. Kruskal (baseline).
//!
//! Borůvka fits the abstraction's loop structure naturally: each superstep
//! every component selects its lightest outgoing edge in parallel (a
//! compute operator over vertices + an atomic min-reduction keyed by
//! component), then the selected edges merge components; convergence when
//! no component has an outgoing edge. Expects a **symmetric** weighted
//! graph; returns a forest on disconnected inputs.

use essentials_core::prelude::*;
use parking_lot::Mutex;

/// Minimum spanning forest result.
#[derive(Debug, Clone)]
pub struct MstResult {
    /// Chosen edges as `(u, v, w)` with `u < v`.
    pub edges: Vec<(VertexId, VertexId, f32)>,
    /// Total forest weight.
    pub total_weight: f64,
    /// Borůvka rounds (0 for Kruskal).
    pub rounds: usize,
}

#[derive(Clone)]
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            self.parent[v as usize] = self.parent[self.parent[v as usize] as usize];
            v = self.parent[v as usize];
        }
        v
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }
}

/// Parallel Borůvka. Ties between equal-weight edges are broken by
/// `(weight, u, v)` lexicographic order, making the result deterministic
/// even when the MST is not unique.
pub fn boruvka<P: ExecutionPolicy>(_policy: P, ctx: &Context, g: &Graph<f32>) -> MstResult {
    let n = g.get_num_vertices();
    let mut dsu = Dsu::new(n);
    let mut chosen: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut rounds = 0usize;

    loop {
        rounds += 1;
        // Snapshot component labels for this round.
        let comp: Vec<u32> = {
            let mut d = dsu.clone();
            (0..n as u32).map(|v| d.find(v)).collect()
        };
        // Per-thread best outgoing edge per component, merged at the end.
        // (A component-indexed atomic min over (weight, u, v) keys.)
        type Best = std::collections::HashMap<u32, (f32, VertexId, VertexId)>;
        let locals: Vec<Mutex<Best>> = (0..ctx.num_threads())
            .map(|_| Mutex::new(Best::new()))
            .collect();
        let better = |a: (f32, VertexId, VertexId), b: (f32, VertexId, VertexId)| -> bool {
            // true if a is strictly better than b
            (a.0, a.1, a.2) < (b.0, b.1, b.2)
        };
        // Scan all vertices' edges (compute operator with tid-aware body).
        let frontier: Vec<VertexId> = g.vertices().collect();
        let consider = |tid: usize, v: VertexId| {
            let cv = comp[v as usize];
            for e in g.get_edges(v) {
                let u = g.get_dest_vertex(e);
                if comp[u as usize] == cv {
                    continue;
                }
                let w = g.get_edge_weight(e);
                let key = if v < u { (w, v, u) } else { (w, u, v) };
                let mut best = locals[tid].lock();
                match best.get(&cv) {
                    Some(&cur) if !better(key, cur) => {}
                    _ => {
                        best.insert(cv, key);
                    }
                }
            }
        };
        if P::IS_PARALLEL && ctx.num_threads() > 1 {
            for_each_vertex_balanced(ctx, &frontier, consider);
        } else {
            for &v in &frontier {
                consider(0, v);
            }
        }
        // Merge per-thread bests.
        let mut best: Best = Best::new();
        for l in locals {
            for (c, key) in l.into_inner() {
                match best.get(&c) {
                    Some(&cur) if !better(key, cur) => {}
                    _ => {
                        best.insert(c, key);
                    }
                }
            }
        }
        if best.is_empty() {
            break;
        }
        // Hook: add each component's best edge unless it would cycle (two
        // components may pick the same edge — union() filters).
        let mut merged_any = false;
        let mut picks: Vec<(f32, VertexId, VertexId)> = best.into_values().collect();
        picks.sort_by(|a, b| a.partial_cmp(b).unwrap());
        picks.dedup();
        for (w, u, v) in picks {
            if dsu.union(u, v) {
                chosen.push((u, v, w));
                merged_any = true;
            }
        }
        if !merged_any {
            break;
        }
    }

    chosen.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_weight = chosen.iter().map(|&(_, _, w)| w as f64).sum();
    MstResult {
        edges: chosen,
        total_weight,
        rounds,
    }
}

/// Sequential Kruskal with the same tie-breaking — the oracle. On graphs
/// with distinct weights the edge sets match exactly; with ties, total
/// weights match.
pub fn kruskal(g: &Graph<f32>) -> MstResult {
    let n = g.get_num_vertices();
    let mut edges: Vec<(f32, VertexId, VertexId)> = Vec::new();
    for v in g.vertices() {
        for e in g.get_edges(v) {
            let u = g.get_dest_vertex(e);
            if v < u {
                edges.push((g.get_edge_weight(e), v, u));
            }
        }
    }
    edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
    edges.dedup();
    let mut dsu = Dsu::new(n);
    let mut chosen = Vec::new();
    for (w, u, v) in edges {
        if dsu.union(u, v) {
            chosen.push((u, v, w));
        }
    }
    chosen.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_weight = chosen.iter().map(|&(_, _, w)| w as f64).sum();
    MstResult {
        edges: chosen,
        total_weight,
        rounds: 0,
    }
}

/// Verifies that `edges` forms a spanning forest of the right size (one
/// less edge than vertices per connected component) and acyclic.
pub fn verify_forest(g: &Graph<f32>, result: &MstResult) -> bool {
    let n = g.get_num_vertices();
    let mut dsu = Dsu::new(n);
    for &(u, v, _) in &result.edges {
        if !g.csr().has_edge(u, v) && !g.csr().has_edge(v, u) {
            return false; // not a graph edge
        }
        if !dsu.union(u, v) {
            return false; // cycle
        }
    }
    // Forest spans: its components must equal the graph's components.
    let graph_comps = crate::cc::num_components(&crate::cc::cc_union_find(g).comp);
    let forest_comps = (0..n as u32)
        .map(|v| dsu.find(v))
        .collect::<std::collections::HashSet<_>>()
        .len();
    graph_comps == forest_comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn weighted_sym(seed: u64, n: usize, m: usize) -> Graph<f32> {
        let coo = gen::gnm(n, m, seed);
        let sym = {
            let mut c = coo.clone();
            c.symmetrize();
            c.sort_and_dedup();
            c
        };
        // Hash weights: symmetric pairs get equal weights.
        Graph::from_coo(&gen::hash_weights(&sym, 0.1, 10.0, seed))
    }

    #[test]
    fn boruvka_matches_kruskal_weight_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [1, 6, 11] {
            let g = weighted_sym(seed, 120, 400);
            let b = boruvka(execution::par, &ctx, &g);
            let k = kruskal(&g);
            assert!(
                (b.total_weight - k.total_weight).abs() < 1e-3,
                "seed {seed}: {} vs {}",
                b.total_weight,
                k.total_weight
            );
            assert!(verify_forest(&g, &b), "invalid forest, seed {seed}");
            assert!(verify_forest(&g, &k));
        }
    }

    #[test]
    fn known_mst_on_a_small_graph() {
        // Square with a diagonal: MST must pick the three lightest
        // non-cyclic edges.
        let mut coo = Coo::<f32>::new(4);
        for (a, b, w) in [
            (0, 1, 1.0f32),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (3, 0, 4.0),
            (0, 2, 2.5),
        ] {
            coo.push(a, b, w);
            coo.push(b, a, w);
        }
        let g = Graph::from_coo(&coo);
        let ctx = Context::sequential();
        let b = boruvka(execution::seq, &ctx, &g);
        assert_eq!(b.total_weight, 6.0); // 1 + 2 + 3
        assert_eq!(b.edges.len(), 3);
    }

    #[test]
    fn forest_on_disconnected_graph() {
        let mut coo = Coo::<f32>::new(5);
        for (a, b, w) in [(0, 1, 1.0f32), (2, 3, 2.0)] {
            coo.push(a, b, w);
            coo.push(b, a, w);
        }
        let g = Graph::from_coo(&coo);
        let ctx = Context::new(2);
        let b = boruvka(execution::par, &ctx, &g);
        assert_eq!(b.edges.len(), 2);
        assert!(verify_forest(&g, &b));
    }

    #[test]
    fn policy_equivalence_exact_edges() {
        let ctx = Context::new(4);
        let g = weighted_sym(3, 80, 300);
        let a = boruvka(execution::seq, &ctx, &g);
        let b = boruvka(execution::par, &ctx, &g);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn empty_graph_empty_forest() {
        let g = Graph::<f32>::from_coo(&Coo::new(3));
        let ctx = Context::sequential();
        let b = boruvka(execution::par, &ctx, &g);
        assert!(b.edges.is_empty());
        assert_eq!(b.total_weight, 0.0);
    }
}
