//! Sparse matrix–vector multiply over the CSR — the bridge the paper draws
//! between native-graph and linear-algebra analytics (§IV-A): the same
//! structure is simultaneously a graph and a sparse matrix.

use essentials_core::prelude::*;

/// `y = A·x` where `A` is the graph's adjacency (CSR rows = matrix rows,
/// edge weights = entries). Row-parallel: each output element is owned by
/// one task, so no atomics are needed.
pub fn spmv<P: ExecutionPolicy>(policy: P, ctx: &Context, g: &Graph<f32>, x: &[f32]) -> Vec<f32> {
    let n = g.get_num_vertices();
    assert_eq!(x.len(), n, "dimension mismatch");
    fill_indexed(policy, ctx, n, |row| {
        let v = row as VertexId;
        let cols = g.out_neighbors(v);
        let vals = g.csr().neighbor_values(v);
        let mut acc = 0.0f32;
        for (c, w) in cols.iter().zip(vals) {
            acc += w * x[*c as usize];
        }
        acc
    })
}

/// Sequential reference.
pub fn spmv_sequential(g: &Graph<f32>, x: &[f32]) -> Vec<f32> {
    let ctx = Context::sequential();
    spmv(execution::seq, &ctx, g, x)
}

/// Power iteration on the adjacency (dominant eigenvector sketch) — an
/// SpMV-composed loop, used by the suite bench as a repeated-kernel
/// workload.
pub fn power_iteration<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    iterations: usize,
) -> Vec<f32> {
    let n = g.get_num_vertices();
    let mut x = vec![1.0f32 / (n.max(1) as f32).sqrt(); n];
    for _ in 0..iterations {
        let mut y = spmv(policy, ctx, g, &x);
        let norm = y.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut y {
                *v /= norm;
            }
        }
        x = y;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    #[test]
    fn small_known_product() {
        // [[0,2],[3,0]] * [1,1] = [2,3]
        let g = Graph::from_coo(&Coo::from_edges(2, [(0, 1, 2.0f32), (1, 0, 3.0)]));
        let ctx = Context::new(2);
        assert_eq!(spmv(execution::par, &ctx, &g, &[1.0, 1.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn policy_equivalence_bitwise() {
        // Row-parallel SpMV does not reassociate within a row, so results
        // are bitwise identical across policies.
        let coo = gen::rmat(9, 8, gen::RmatParams::default(), 8);
        let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.0, 1.0, 3));
        let ctx = Context::new(4);
        let x: Vec<f32> = (0..g.get_num_vertices()).map(|i| (i % 17) as f32).collect();
        assert_eq!(
            spmv(execution::seq, &ctx, &g, &x),
            spmv(execution::par, &ctx, &g, &x)
        );
    }

    #[test]
    fn zero_matrix_gives_zero_vector() {
        let g = Graph::<f32>::from_coo(&Coo::new(4));
        let ctx = Context::sequential();
        assert_eq!(spmv(execution::par, &ctx, &g, &[1.0; 4]), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let g = Graph::<f32>::from_coo(&Coo::new(3));
        let ctx = Context::sequential();
        spmv(execution::seq, &ctx, &g, &[1.0; 2]);
    }

    #[test]
    fn power_iteration_finds_cycle_eigenvector() {
        // On a directed cycle the adjacency is a permutation: the all-ones
        // direction is invariant.
        let coo = gen::cycle(8);
        let g = Graph::from_coo(&gen::unit_weights(&coo));
        let ctx = Context::new(2);
        let x = power_iteration(execution::par, &ctx, &g, 50);
        let expect = 1.0 / (8.0f32).sqrt();
        for v in x {
            assert!((v - expect).abs() < 1e-5);
        }
    }
}
