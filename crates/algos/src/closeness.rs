//! Closeness and harmonic centrality over unweighted graphs.
//!
//! Composed entirely from the BFS building block: one traversal per
//! source, parallelism inside each traversal (the same structure as
//! Brandes BC). Harmonic centrality — `h(v) = Σ 1/d(v,u)` — handles
//! disconnected graphs gracefully (unreachable pairs contribute 0), which
//! is why it is the default the harness reports.

use essentials_core::prelude::*;

use crate::bfs::{bfs, UNVISITED};

/// Centrality scores for the requested sources.
#[derive(Debug, Clone)]
pub struct ClosenessResult {
    /// Classic closeness: `(r-1) / Σ d` where `r` = reachable count
    /// (0 when nothing is reachable).
    pub closeness: Vec<f64>,
    /// Harmonic: `Σ 1/d` over reachable vertices.
    pub harmonic: Vec<f64>,
    /// Vertices whose scores were computed.
    pub sources: Vec<VertexId>,
}

/// Computes both centralities for each vertex in `sources` (pass all
/// vertices for exact centrality; a sample for the usual approximation).
pub fn closeness<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    sources: &[VertexId],
) -> ClosenessResult {
    let mut result = ClosenessResult {
        closeness: Vec::with_capacity(sources.len()),
        harmonic: Vec::with_capacity(sources.len()),
        sources: sources.to_vec(),
    };
    for &s in sources {
        let r = bfs(policy, ctx, g, s);
        let mut sum = 0u64;
        let mut inv_sum = 0.0f64;
        let mut reachable = 0u64;
        for (v, &l) in r.level.iter().enumerate() {
            if l == UNVISITED || v == s as usize {
                continue;
            }
            reachable += 1;
            sum += l as u64;
            inv_sum += 1.0 / l as f64;
        }
        result.closeness.push(if sum == 0 {
            0.0
        } else {
            reachable as f64 / sum as f64
        });
        result.harmonic.push(inv_sum);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    #[test]
    fn star_hub_has_maximal_centrality() {
        let g = Graph::from_coo(&gen::star(9));
        let ctx = Context::new(2);
        let sources: Vec<VertexId> = g.vertices().collect();
        let r = closeness(execution::par, &ctx, &g, &sources);
        // Hub: all 8 leaves at distance 1 → closeness 1, harmonic 8.
        assert!((r.closeness[0] - 1.0).abs() < 1e-12);
        assert!((r.harmonic[0] - 8.0).abs() < 1e-12);
        // Leaf: hub at 1, 7 leaves at 2 → closeness 8/15.
        assert!((r.closeness[1] - 8.0 / 15.0).abs() < 1e-12);
        assert!((r.harmonic[1] - (1.0 + 7.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn path_centrality_peaks_at_the_center() {
        let g = GraphBuilder::from_coo(gen::path(9))
            .symmetrize()
            .deduplicate()
            .build();
        let sources: Vec<VertexId> = g.vertices().collect();
        let ctx = Context::new(2);
        let r = closeness(execution::par, &ctx, &g, &sources);
        let center = 4usize;
        for v in 0..9 {
            if v != center {
                assert!(r.closeness[center] >= r.closeness[v]);
                assert!(r.harmonic[center] >= r.harmonic[v]);
            }
        }
    }

    #[test]
    fn disconnected_vertices_score_zero() {
        let g = Graph::<()>::from_coo(&Coo::new(3));
        let ctx = Context::sequential();
        let r = closeness(execution::seq, &ctx, &g, &[0, 1, 2]);
        assert_eq!(r.closeness, vec![0.0; 3]);
        assert_eq!(r.harmonic, vec![0.0; 3]);
    }

    #[test]
    fn policy_equivalence() {
        let g = GraphBuilder::from_coo(gen::gnm(120, 600, 4))
            .symmetrize()
            .deduplicate()
            .build();
        let ctx = Context::new(4);
        let sources: Vec<VertexId> = (0..20).collect();
        let a = closeness(execution::seq, &ctx, &g, &sources);
        let b = closeness(execution::par, &ctx, &g, &sources);
        assert_eq!(a.closeness, b.closeness);
        assert_eq!(a.harmonic, b.harmonic);
    }
}
