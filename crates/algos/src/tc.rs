//! Triangle counting via sorted-adjacency intersection.
//!
//! Uses the rank-ordered direction trick: build the DAG that keeps only
//! edges `u → v` with `u < v`; each triangle `{u < v < w}` then appears as
//! exactly one wedge `u → v`, `u → w`, `v → w`, counted by intersecting
//! `N⁺(u) ∩ N⁺(v)`. The intersection operator is the merge/gallop pair
//! from `essentials-core`.

use essentials_core::prelude::*;

/// Triangle count plus work metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcResult {
    /// Number of distinct triangles.
    pub triangles: usize,
    /// Intersection operations performed.
    pub intersections: usize,
}

/// Builds the oriented (rank-ordered) DAG of a symmetric graph.
fn orient<W: EdgeValue>(g: &Graph<W>) -> Csr<()> {
    let mut coo = Coo::new(g.get_num_vertices());
    for u in g.vertices() {
        for &v in g.out_neighbors(u) {
            if u < v {
                coo.push(u, v, ());
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Parallel triangle count of a **symmetric** graph (each undirected edge
/// present in both directions; self-loops ignored by orientation).
pub fn triangle_count<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    gallop: bool,
) -> TcResult {
    let dag = orient(g);
    let n = dag.num_vertices();
    let intersections = essentials_parallel::atomics::Counter::new();
    let triangles = essentials_core::operators::reduce::reduce(
        policy,
        ctx,
        n,
        0usize,
        |u| {
            let u = u as VertexId;
            let nu = dag.neighbors(u);
            let mut local = 0;
            for &v in nu {
                intersections.add(1);
                let nv = dag.neighbors(v);
                local += if gallop {
                    intersect_count_gallop(nu, nv)
                } else {
                    intersect_count(nu, nv)
                };
            }
            local
        },
        |a, b| a + b,
    );
    TcResult {
        triangles,
        intersections: intersections.get(),
    }
}

/// Per-vertex triangle counts and local clustering coefficients of a
/// **symmetric** graph: `lcc[v] = 2·tri(v) / (deg(v)·(deg(v)-1))`, the
/// fraction of a vertex's neighbor pairs that are themselves connected.
pub fn clustering_coefficients<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> Vec<f64> {
    let n = g.get_num_vertices();
    fill_indexed(policy, ctx, n, |v| {
        let v = v as VertexId;
        let nbrs: Vec<VertexId> = g
            .out_neighbors(v)
            .iter()
            .copied()
            .filter(|&u| u != v)
            .collect();
        let deg = nbrs.len();
        if deg < 2 {
            return 0.0;
        }
        // Count connected neighbor pairs via adjacency intersection: for
        // each neighbor u, |N(v) ∩ N(u)| counts wedges closed through u;
        // summing double-counts each triangle at v exactly twice.
        let mut wedges_closed = 0usize;
        for &u in &nbrs {
            wedges_closed += intersect_count(&nbrs, g.out_neighbors(u));
        }
        let tri = wedges_closed / 2;
        2.0 * tri as f64 / (deg * (deg - 1)) as f64
    })
}

/// O(n³)-ish brute-force oracle for small graphs: checks all vertex triples.
pub fn triangle_count_naive<W: EdgeValue>(g: &Graph<W>) -> usize {
    let n = g.get_num_vertices() as VertexId;
    let mut count = 0;
    for u in 0..n {
        for v in u + 1..n {
            if !g.csr().has_edge(u, v) {
                continue;
            }
            for w in v + 1..n {
                if g.csr().has_edge(u, w) && g.csr().has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn sym(coo: &Coo<()>) -> Graph<()> {
        GraphBuilder::from_coo(coo.clone())
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .build()
    }

    #[test]
    fn complete_graph_formula() {
        // K5 has C(5,3) = 10 triangles.
        let g = Graph::from_coo(&gen::complete(5));
        let ctx = Context::new(2);
        let r = triangle_count(execution::par, &ctx, &g, false);
        assert_eq!(r.triangles, 10);
    }

    #[test]
    fn merge_and_gallop_agree_with_naive_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [1, 5, 9] {
            let g = sym(&gen::gnm(60, 400, seed));
            let expected = triangle_count_naive(&g);
            let merge = triangle_count(execution::par, &ctx, &g, false);
            let gallop = triangle_count(execution::par, &ctx, &g, true);
            assert_eq!(merge.triangles, expected, "merge diverged (seed {seed})");
            assert_eq!(gallop.triangles, expected, "gallop diverged (seed {seed})");
        }
    }

    #[test]
    fn policy_equivalence() {
        let ctx = Context::new(4);
        let g = sym(&gen::rmat(8, 6, gen::RmatParams::default(), 4));
        let a = triangle_count(execution::seq, &ctx, &g, false).triangles;
        let b = triangle_count(execution::par, &ctx, &g, false).triangles;
        assert_eq!(a, b);
    }

    #[test]
    fn triangle_free_graphs() {
        let ctx = Context::new(2);
        // Grids and trees are triangle-free; a star too.
        for coo in [gen::grid2d(6, 6), gen::binary_tree(31), gen::star(20)] {
            let g = sym(&coo);
            assert_eq!(triangle_count(execution::par, &ctx, &g, false).triangles, 0);
        }
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = Graph::from_coo(&gen::complete(6));
        let ctx = Context::new(2);
        let lcc = clustering_coefficients(execution::par, &ctx, &g);
        assert!(lcc.iter().all(|&c| (c - 1.0).abs() < 1e-12), "{lcc:?}");
    }

    #[test]
    fn clustering_of_triangle_free_graphs_is_zero() {
        let ctx = Context::new(2);
        for coo in [gen::grid2d(5, 5), gen::star(10)] {
            let g = sym(&coo);
            let lcc = clustering_coefficients(execution::par, &ctx, &g);
            assert!(lcc.iter().all(|&c| c == 0.0));
        }
    }

    #[test]
    fn clustering_relates_to_total_triangles() {
        // Sum over v of tri(v) = 3 * total triangles; recover tri(v) from
        // lcc and degree to cross-check the two computations.
        let ctx = Context::new(2);
        let g = sym(&gen::gnm(50, 350, 4));
        let lcc = clustering_coefficients(execution::par, &ctx, &g);
        let mut tri_sum = 0.0f64;
        for v in g.vertices() {
            let d = g.out_degree(v) as f64;
            tri_sum += lcc[v as usize] * d * (d - 1.0) / 2.0;
        }
        let total = triangle_count(execution::par, &ctx, &g, false).triangles;
        assert!(
            (tri_sum / 3.0 - total as f64).abs() < 1e-6,
            "{tri_sum} vs {total}"
        );
    }

    #[test]
    fn clustering_policy_equivalence() {
        let ctx = Context::new(4);
        let g = sym(&gen::rmat(7, 6, gen::RmatParams::default(), 8));
        let a = clustering_coefficients(execution::seq, &ctx, &g);
        let b = clustering_coefficients(execution::par, &ctx, &g);
        assert_eq!(a, b);
    }

    #[test]
    fn self_loops_do_not_create_triangles() {
        let mut coo = Coo::<()>::new(3);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (0, 0), (1, 1)] {
            coo.push(a, b, ());
        }
        let g = sym(&coo);
        let ctx = Context::sequential();
        assert_eq!(triangle_count(execution::seq, &ctx, &g, false).triangles, 1);
    }
}
