//! k-core decomposition by iterative peeling.
//!
//! The core number of a vertex is the largest k such that it belongs to a
//! subgraph where every vertex has degree ≥ k. The parallel version peels
//! in rounds — the frontier of the round is exactly the set of vertices
//! whose remaining degree fell below k, a natural fit for the
//! frontier/operator abstraction. The sequential baseline is the classic
//! O(m) bucket peeling (Batagelj–Zaveršnik).

use essentials_core::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Core numbers plus peeling metadata.
#[derive(Debug, Clone)]
pub struct KcoreResult {
    /// `core[v]` = core number of v.
    pub core: Vec<u32>,
    /// Peeling rounds executed across all k.
    pub rounds: usize,
}

/// Parallel peeling on a **symmetric** graph: for k = 1, 2, …, repeatedly
/// remove vertices with remaining degree < k (decrementing neighbors
/// atomically) until stable; survivors of the k-phase have core ≥ k.
pub fn kcore_peel<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> KcoreResult {
    let n = g.get_num_vertices();
    let deg: Vec<AtomicUsize> = g
        .vertices()
        .map(|v| AtomicUsize::new(g.out_degree(v)))
        .collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let alive = DenseFrontier::new(n);
    for v in g.vertices() {
        alive.insert(v);
    }
    let mut rounds = 0usize;
    let mut k = 1u32;
    let mut remaining = n;
    while remaining > 0 {
        // Collect the initial peel set for this k.
        let mut peel: SparseFrontier = g
            .vertices()
            .filter(|&v| alive.contains(v) && deg[v as usize].load(Ordering::Acquire) < k as usize)
            .collect();
        while !peel.is_empty() {
            rounds += 1;
            // Mark the peeled vertices dead with core number k-1.
            foreach_active(policy, ctx, &peel, |v| {
                if alive.remove(v) {
                    // Relaxed: each vertex is stored exactly once (the
                    // `alive.remove` claim), and the only reader is
                    // `into_inner` after the final region join below.
                    core[v as usize].store(k - 1, Ordering::Relaxed);
                }
            });
            remaining -= peel.len();
            // Decrement neighbors; those dropping below k join the next peel.
            let out = neighbors_expand(policy, ctx, g, &peel, |_src, dst, _e, _w| {
                if !alive.contains(dst) {
                    return false;
                }
                let old = deg[dst as usize].fetch_sub(1, Ordering::AcqRel);
                // Activate exactly when the decrement crosses the threshold.
                old == k as usize
            });
            peel = uniquify_with_bitmap(policy, ctx, &out, n);
            // Only vertices still alive belong in the peel set.
            peel = filter(policy, ctx, &peel, |v| alive.contains(v));
        }
        k += 1;
    }
    KcoreResult {
        core: core.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
    }
}

/// Sequential bucket peeling (the oracle).
pub fn kcore_sequential<W: EdgeValue>(g: &Graph<W>) -> KcoreResult {
    let n = g.get_num_vertices();
    let mut deg: Vec<usize> = g.vertices().map(|v| g.out_degree(v)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    // Bucket sort vertices by degree.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in g.vertices() {
        buckets[deg[v as usize]].push(v);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_core = 0usize;
    for d in 0..=max_deg {
        let mut stack = std::mem::take(&mut buckets[d]);
        while let Some(v) = stack.pop() {
            if removed[v as usize] || deg[v as usize] > d {
                // Stale entry: v was re-bucketed to a smaller degree... which
                // can only be ≤ d, so deg > d means a stale *larger* record.
                continue;
            }
            removed[v as usize] = true;
            current_core = current_core.max(deg[v as usize]);
            core[v as usize] = current_core as u32;
            for &u in g.out_neighbors(v) {
                if !removed[u as usize] && deg[u as usize] > d {
                    deg[u as usize] -= 1;
                    if deg[u as usize] == d {
                        stack.push(u);
                    } else {
                        buckets[deg[u as usize]].push(u);
                    }
                }
            }
        }
    }
    KcoreResult { core, rounds: 0 }
}

/// Verifies core numbers on a symmetric graph by reconstruction: for every
/// distinct k, the subgraph induced by `{v : core[v] ≥ k}` must have min
/// degree ≥ k, and each vertex with core k must drop below k+1 when the
/// (k+1)-threshold peel runs.
pub fn verify_kcore<W: EdgeValue>(g: &Graph<W>, core: &[u32]) -> bool {
    if core.len() != g.get_num_vertices() {
        return false;
    }
    let mut ks: Vec<u32> = core.to_vec();
    ks.sort_unstable();
    ks.dedup();
    for &k in &ks {
        // Induced subgraph {core >= k} must have min degree >= k.
        let inside: Vec<bool> = core.iter().map(|&c| c >= k).collect();
        for v in g.vertices() {
            if !inside[v as usize] {
                continue;
            }
            let d = g
                .out_neighbors(v)
                .iter()
                .filter(|&&u| inside[u as usize])
                .count();
            if d < k as usize {
                return false;
            }
        }
        // Peeling at threshold k+1 must eliminate every core-k vertex.
        let mut deg: Vec<usize> = g
            .vertices()
            .map(|v| {
                g.out_neighbors(v)
                    .iter()
                    .filter(|&&u| inside[u as usize])
                    .count()
            })
            .collect();
        let mut alive = inside.clone();
        let mut queue: Vec<VertexId> = g
            .vertices()
            .filter(|&v| alive[v as usize] && deg[v as usize] < (k + 1) as usize)
            .collect();
        while let Some(v) = queue.pop() {
            if !alive[v as usize] {
                continue;
            }
            alive[v as usize] = false;
            for &u in g.out_neighbors(v) {
                if alive[u as usize] {
                    deg[u as usize] -= 1;
                    if deg[u as usize] < (k + 1) as usize {
                        queue.push(u);
                    }
                }
            }
        }
        // Survivors have core >= k+1; the eliminated must be exactly core k.
        for v in g.vertices() {
            let c = core[v as usize];
            if c == k && alive[v as usize] {
                return false; // claimed core k but survives the k+1 peel
            }
            if c > k && inside[v as usize] && !alive[v as usize] && c == k + 1 {
                // (higher cores may legitimately be peeled at higher
                // thresholds; nothing to check here)
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn sym(coo: &Coo<()>) -> Graph<()> {
        GraphBuilder::from_coo(coo.clone())
            .remove_self_loops()
            .symmetrize()
            .deduplicate()
            .build()
    }

    #[test]
    fn complete_graph_core_is_n_minus_1() {
        let g = Graph::from_coo(&gen::complete(6));
        let ctx = Context::new(2);
        let r = kcore_peel(execution::par, &ctx, &g);
        assert!(r.core.iter().all(|&c| c == 5));
    }

    #[test]
    fn tree_core_is_one() {
        let g = sym(&gen::binary_tree(63));
        let ctx = Context::new(2);
        let r = kcore_peel(execution::par, &ctx, &g);
        assert!(r.core.iter().all(|&c| c == 1), "{:?}", &r.core[..8]);
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [2, 4] {
            let g = sym(&gen::gnm(150, 900, seed));
            let par = kcore_peel(execution::par, &ctx, &g);
            let seq = kcore_sequential(&g);
            assert_eq!(par.core, seq.core, "seed {seed}");
            assert!(verify_kcore(&g, &par.core));
        }
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 (core 2) with a tail 2-3 (core 1), isolated 4.
        let mut coo = Coo::<()>::new(5);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            coo.push(a, b, ());
        }
        let g = sym(&coo);
        let ctx = Context::sequential();
        let r = kcore_peel(execution::seq, &ctx, &g);
        assert_eq!(r.core, vec![2, 2, 2, 1, 0]);
        assert!(verify_kcore(&g, &r.core));
    }

    #[test]
    fn policy_equivalence() {
        let ctx = Context::new(4);
        let g = sym(&gen::rmat(8, 4, gen::RmatParams::default(), 6));
        let a = kcore_peel(execution::seq, &ctx, &g).core;
        let b = kcore_peel(execution::par, &ctx, &g).core;
        assert_eq!(a, b);
    }
}
