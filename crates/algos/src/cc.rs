//! Connected components (of undirected / symmetrized graphs).
//!
//! Three computations of the same partition:
//! * [`cc_label_propagation`] — frontier-driven min-label propagation built
//!   entirely from essentials operators (the "abstraction-native" version);
//! * [`cc_hooking`] — Shiloach–Vishkin-style hooking + pointer jumping over
//!   the edge list (no frontier; shows the abstraction also hosts
//!   non-traversal algorithms via compute operators);
//! * [`cc_union_find`] — sequential union-find baseline (oracle).
//!
//! Component ids are canonicalized to the minimum vertex id of each
//! component, so results compare with `==` across variants.

use essentials_core::prelude::*;
use essentials_parallel::atomics::Counter;
use std::sync::atomic::{AtomicU32, Ordering};

/// Component labeling plus run metadata.
#[derive(Debug, Clone)]
pub struct CcResult {
    /// `comp[v]` = smallest vertex id in v's component.
    pub comp: Vec<VertexId>,
    /// Loop statistics.
    pub stats: LoopStats,
    /// Label updates attempted (work measure).
    pub updates: usize,
}

/// Frontier-driven min-label propagation: every vertex starts labeled with
/// itself and active; an active vertex pushes its label to neighbors, who
/// adopt it if smaller and activate in turn. Converges to the component
/// minimum. Requires a symmetric graph for the labels to mean *connected*
/// (not merely reachable) components.
pub fn cc_label_propagation<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> CcResult {
    match try_cc_label_propagation(policy, ctx, g) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`cc_label_propagation`]: budget and fault hooks fire at
/// iteration and chunk boundaries; on error the partially-propagated
/// labels are dropped with the context left fully reusable.
pub fn try_cc_label_propagation<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> Result<CcResult, ExecError> {
    let n = g.get_num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let updates = Counter::new();
    let init: SparseFrontier = g.vertices().collect();
    let (_, stats) = Enactor::for_ctx(ctx).try_run(init, |_, f| {
        // Dedup is fused into the push; spent frontiers recycle their
        // storage into the next iteration's output.
        let out = try_neighbors_expand_unique(policy, ctx, g, &f, |src, dst, _e, _w| {
            updates.add(1);
            let l = labels[src as usize].load(Ordering::Acquire);
            labels[dst as usize].fetch_min(l, Ordering::AcqRel) > l
        })?;
        ctx.recycle_frontier(f);
        Ok(out)
    })?;
    Ok(CcResult {
        comp: labels.into_iter().map(AtomicU32::into_inner).collect(),
        stats,
        updates: updates.get(),
    })
}

/// Min-label propagation routed through the core adaptive advance engine:
/// the same `fetch_min` label update as [`cc_label_propagation`], in both
/// its push view (active vertices scatter labels over out-edges) and its
/// pull view (vertices gather labels over in-edges from active neighbors),
/// with [`advance_adaptive`] picking direction and representation per
/// iteration. The initial frontier is *every* vertex — density 1 — so the
/// policy typically opens dense and shifts to sparse push as labels settle.
/// Requires a symmetric graph (as all CC variants do) built `with_csc`.
///
/// `fetch_min` is monotone and order-independent: the labels reach the same
/// component-minimum fixpoint whatever direction mix the policy chooses.
pub fn cc_adaptive<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> CcResult {
    let n = g.get_num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let updates = Counter::new();
    let mut engine = AdaptiveAdvance::new(
        g,
        AdaptiveConfig {
            policy: DirectionPolicy::default(),
            early_exit: false,
            settle: false,
            bins: BlockedConfig::default(),
        },
    );
    let mut trace = Vec::new();
    let mut frontier = VertexFrontier::Sparse(g.vertices().collect());
    while frontier.len() > 0 {
        frontier = advance_adaptive(
            policy,
            ctx,
            g,
            &mut engine,
            frontier,
            |src, dst, _e, _w| {
                updates.add(1);
                let l = labels[src as usize].load(Ordering::Acquire);
                labels[dst as usize].fetch_min(l, Ordering::AcqRel) > l
            },
            |_dst| true,
            |src, dst, _w| {
                updates.add(1);
                let l = labels[src as usize].load(Ordering::Acquire);
                labels[dst as usize].fetch_min(l, Ordering::AcqRel) > l
            },
        );
        trace.push(frontier.len());
    }
    engine.finish(ctx);
    CcResult {
        comp: labels.into_iter().map(AtomicU32::into_inner).collect(),
        stats: LoopStats {
            iterations: engine.iterations(),
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        updates: updates.get(),
    }
}

/// [`cc_adaptive`] over byte-coded compressed adjacency, dispatched
/// through [`advance_adaptive_compressed`]. Same monotone `fetch_min`
/// label update, same full-universe initial frontier; labels reach the
/// same component-minimum fixpoint bit-for-bit
/// (`tests/differential.rs`). Requires a symmetric graph compressed with
/// both sides (e.g. [`CompressedGraph::from_graph`] on a `with_csc`
/// build).
pub fn cc_adaptive_compressed<P, W, G>(policy: P, ctx: &Context, g: &G) -> CcResult
where
    P: ExecutionPolicy,
    W: EdgeValue,
    G: DecodeEdgeWeights<W> + DecodeInEdgeWeights<W> + Sync,
{
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let updates = Counter::new();
    let mut engine = AdaptiveAdvance::new(
        g,
        AdaptiveConfig {
            policy: DirectionPolicy::default(),
            early_exit: false,
            settle: false,
            bins: BlockedConfig::default(),
        },
    );
    let mut trace = Vec::new();
    let mut frontier = VertexFrontier::Sparse(g.vertices().collect());
    while frontier.len() > 0 {
        frontier = advance_adaptive_compressed(
            policy,
            ctx,
            g,
            &mut engine,
            frontier,
            |src, dst, _e, _w| {
                updates.add(1);
                let l = labels[src as usize].load(Ordering::Acquire);
                labels[dst as usize].fetch_min(l, Ordering::AcqRel) > l
            },
            |_dst| true,
            |src, dst, _w| {
                updates.add(1);
                let l = labels[src as usize].load(Ordering::Acquire);
                labels[dst as usize].fetch_min(l, Ordering::AcqRel) > l
            },
        );
        trace.push(frontier.len());
    }
    engine.finish(ctx);
    CcResult {
        comp: labels.into_iter().map(AtomicU32::into_inner).collect(),
        stats: LoopStats {
            iterations: engine.iterations(),
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        updates: updates.get(),
    }
}

/// Hooking + pointer jumping: repeatedly hook the larger root onto the
/// smaller across every edge, then compress all parent chains, until no
/// hook fires. O(m log n) total work, a constant number of supersteps on
/// most graphs.
pub fn cc_hooking<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
) -> CcResult {
    let n = g.get_num_vertices();
    let m = g.get_num_edges();
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let updates = Counter::new();

    let find = |mut v: u32| -> u32 {
        loop {
            let p = parent[v as usize].load(Ordering::Acquire);
            if p == v {
                return v;
            }
            v = p;
        }
    };

    let (_, stats) = Enactor::for_ctx(ctx)
        .max_iterations(64)
        .run_until((), |_, (), progress| {
            let changed = Counter::new();
            // Hook phase: for every edge, point the larger root at the smaller.
            foreach_vertex(policy, ctx, m, |e| {
                let e = e as usize;
                let u = g.get_source_vertex(e);
                let v = g.get_dest_vertex(e);
                let (ru, rv) = (find(u), find(v));
                if ru == rv {
                    return;
                }
                updates.add(1);
                let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
                // CAS so only roots are re-pointed; a failed CAS means someone
                // else hooked hi first — the next round will see it.
                if parent[hi as usize]
                    .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    changed.add(1);
                }
            });
            // Jump phase: full path compression.
            foreach_vertex(policy, ctx, n, |v| {
                let root = find(v);
                parent[v as usize].store(root, Ordering::Release);
            });
            // Hooks that fired this round are the loop's work measure.
            progress.report_work(changed.get());
            changed.get() == 0
        });
    CcResult {
        comp: parent.into_iter().map(AtomicU32::into_inner).collect(),
        stats,
        updates: updates.get(),
    }
}

/// Sequential union-find with path halving and union-by-smaller-id
/// (canonical labels fall out directly). The oracle.
pub fn cc_union_find<W: EdgeValue>(g: &Graph<W>) -> CcResult {
    let n = g.get_num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize]; // halve
            v = parent[v as usize];
        }
        v
    }
    let mut updates = 0usize;
    for u in g.vertices() {
        for e in g.get_edges(u) {
            let v = g.get_dest_vertex(e);
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                updates += 1;
                let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
    }
    // Canonicalize.
    for v in 0..n as u32 {
        let r = find(&mut parent, v);
        parent[v as usize] = r;
    }
    CcResult {
        comp: parent,
        stats: LoopStats::default(),
        updates,
    }
}

/// Number of distinct components in a labeling.
pub fn num_components(comp: &[VertexId]) -> usize {
    let mut ids: Vec<VertexId> = comp.to_vec();
    ids.sort_unstable();
    ids.dedup();
    ids.len()
}

/// Verifies a component labeling on a symmetric graph: endpoints of every
/// edge share a label, every label is the minimum id of its class, and
/// distinct labels are genuinely disconnected (guaranteed by minimality +
/// edge consistency + each label naming itself).
pub fn verify_cc<W: EdgeValue>(g: &Graph<W>, comp: &[VertexId]) -> bool {
    if comp.len() != g.get_num_vertices() {
        return false;
    }
    // Edge consistency.
    for u in g.vertices() {
        for e in g.get_edges(u) {
            if comp[u as usize] != comp[g.get_dest_vertex(e) as usize] {
                return false;
            }
        }
    }
    // Labels are self-naming minima.
    for (v, &c) in comp.iter().enumerate() {
        if c as usize > v || comp[c as usize] != c {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn sym(coo: &Coo<()>) -> Graph<()> {
        GraphBuilder::from_coo(coo.clone())
            .symmetrize()
            .deduplicate()
            .build()
    }

    #[test]
    fn three_variants_agree_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [1, 2, 3] {
            let g = sym(&gen::gnm(300, 350, seed)); // sparse => several comps
            let oracle = cc_union_find(&g);
            assert!(verify_cc(&g, &oracle.comp));
            let lp = cc_label_propagation(execution::par, &ctx, &g);
            let hook = cc_hooking(execution::par, &ctx, &g);
            assert_eq!(lp.comp, oracle.comp, "label propagation diverged");
            assert_eq!(hook.comp, oracle.comp, "hooking diverged");
        }
    }

    #[test]
    fn adaptive_cc_matches_union_find() {
        let ctx = Context::new(4);
        for seed in [1, 2, 3] {
            let g = GraphBuilder::from_coo(gen::gnm(300, 350, seed))
                .symmetrize()
                .deduplicate()
                .with_csc()
                .build();
            let oracle = cc_union_find(&g);
            // The density-1 initial frontier drives the engine through its
            // dense kernels; fetch_min still lands on the component minima.
            let adaptive = cc_adaptive(execution::par, &ctx, &g);
            assert_eq!(adaptive.comp, oracle.comp);
        }
    }

    #[test]
    fn policy_equivalence_for_label_propagation() {
        let ctx = Context::new(4);
        let g = sym(&gen::gnm(200, 220, 9));
        let seq = cc_label_propagation(execution::seq, &ctx, &g);
        let par = cc_label_propagation(execution::par, &ctx, &g);
        let nosync = cc_label_propagation(execution::par_nosync, &ctx, &g);
        assert_eq!(seq.comp, par.comp);
        assert_eq!(seq.comp, nosync.comp);
    }

    #[test]
    fn disconnected_pieces_are_counted() {
        // Two triangles + an isolated vertex.
        let mut coo = Coo::<()>::new(7);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            coo.push(a, b, ());
        }
        let g = sym(&coo);
        let ctx = Context::new(2);
        let r = cc_label_propagation(execution::par, &ctx, &g);
        assert_eq!(num_components(&r.comp), 3);
        assert_eq!(r.comp, vec![0, 0, 0, 3, 3, 3, 6]);
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = sym(&gen::grid2d(12, 12));
        let ctx = Context::new(2);
        let r = cc_hooking(execution::par, &ctx, &g);
        assert_eq!(num_components(&r.comp), 1);
        assert!(r.comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let ctx = Context::sequential();
        let g0 = Graph::<()>::from_coo(&Coo::new(0));
        assert!(cc_label_propagation(execution::seq, &ctx, &g0)
            .comp
            .is_empty());
        let g5 = Graph::<()>::from_coo(&Coo::new(5));
        let r = cc_union_find(&g5);
        assert_eq!(num_components(&r.comp), 5);
        assert!(verify_cc(&g5, &r.comp));
    }

    #[test]
    fn verifier_rejects_bad_labelings() {
        let g = sym(&Coo::from_edges(3, [(0, 1, ())]));
        assert!(!verify_cc(&g, &[0, 1, 2])); // edge 0-1 split
        assert!(!verify_cc(&g, &[1, 1, 2])); // label not minimal
        assert!(verify_cc(&g, &[0, 0, 2]));
    }
}
