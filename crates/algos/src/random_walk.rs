//! Uniform random walks — the sampling workload (`rw` in the Gunrock
//! essentials suite; the substrate of node2vec/DeepWalk-style embedding
//! pipelines and Monte-Carlo PPR).
//!
//! Each walk is an independent task (embarrassingly parallel over walks);
//! determinism comes from a per-walk RNG seeded by `(seed, walk index)`, so
//! results are reproducible regardless of scheduling.

use essentials_core::prelude::*;
use essentials_graph::INVALID_VERTEX;

/// A batch of random walks, row-major: `walks[w]` has `1 + length` slots,
/// padded with [`INVALID_VERTEX`] after a dead end (vertex with no
/// out-edges).
#[derive(Debug, Clone)]
pub struct WalkResult {
    /// Flattened walks: `walks[w * stride + i]` = i-th vertex of walk w.
    pub steps: Vec<VertexId>,
    /// Slots per walk (`length + 1`).
    pub stride: usize,
}

impl WalkResult {
    /// The w-th walk (including padding).
    pub fn walk(&self, w: usize) -> &[VertexId] {
        &self.steps[w * self.stride..(w + 1) * self.stride]
    }

    /// Number of walks.
    pub fn num_walks(&self) -> usize {
        self.steps.len().checked_div(self.stride).unwrap_or(0)
    }
}

/// Runs one uniform random walk of `length` steps from each start vertex.
pub fn random_walks<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    starts: &[VertexId],
    length: usize,
    seed: u64,
) -> WalkResult {
    let stride = length + 1;
    let steps: Vec<Vec<VertexId>> = fill_indexed(policy, ctx, starts.len(), |w| {
        let mut rng = SplitMix64::new(seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut walk = Vec::with_capacity(stride);
        let mut cur = starts[w];
        walk.push(cur);
        for _ in 0..length {
            let nbrs = g.out_neighbors(cur);
            if nbrs.is_empty() {
                break;
            }
            cur = nbrs[rng.next_below(nbrs.len())];
            walk.push(cur);
        }
        walk.resize(stride, INVALID_VERTEX);
        walk
    });
    WalkResult {
        steps: steps.concat(),
        stride,
    }
}

/// Monte-Carlo personalized PageRank: visit frequencies of many short
/// walks from the seed, with geometric restart (each step continues with
/// probability `damping`). Converges to PPR as `num_walks → ∞`.
pub fn monte_carlo_ppr<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    seed_vertex: VertexId,
    num_walks: usize,
    damping: f64,
    seed: u64,
) -> Vec<f64> {
    use essentials_parallel::atomics::Counter;
    let n = g.get_num_vertices();
    let visits: Vec<Counter> = (0..n).map(|_| Counter::new()).collect();
    let total = Counter::new();
    foreach_vertex(policy, ctx, num_walks, |w| {
        let mut rng = SplitMix64::new(seed ^ (w as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut cur = seed_vertex;
        loop {
            visits[cur as usize].add(1);
            total.add(1);
            // Restart with probability 1 - damping.
            if rng.next_f64() >= damping {
                break;
            }
            let nbrs = g.out_neighbors(cur);
            if nbrs.is_empty() {
                cur = seed_vertex; // dangling: teleport home
            } else {
                cur = nbrs[rng.next_below(nbrs.len())];
            }
        }
    });
    let total = total.get().max(1) as f64;
    visits.into_iter().map(|c| c.get() as f64 / total).collect()
}

/// Minimal SplitMix64 (deterministic, seedable, no dependency on `rand`'s
/// thread-local state inside parallel regions).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn cycle_graph() -> Graph<()> {
        Graph::from_coo(&gen::cycle(10))
    }

    #[test]
    fn walks_follow_edges() {
        let g = GraphBuilder::from_coo(gen::gnm(50, 400, 1))
            .deduplicate()
            .build();
        let ctx = Context::new(2);
        let starts: Vec<VertexId> = (0..20).collect();
        let r = random_walks(execution::par, &ctx, &g, &starts, 8, 7);
        assert_eq!(r.num_walks(), 20);
        for (w, &start) in starts.iter().enumerate() {
            let walk = r.walk(w);
            assert_eq!(walk[0], start);
            for pair in walk.windows(2) {
                if pair[1] == INVALID_VERTEX {
                    break;
                }
                assert!(
                    g.out_neighbors(pair[0]).contains(&pair[1]),
                    "walk {w} took a non-edge {pair:?}"
                );
            }
        }
    }

    #[test]
    fn deterministic_across_policies_and_seeded() {
        // On a cycle every step is forced: policy equivalence is exact.
        let g = cycle_graph();
        let ctx = Context::new(4);
        let starts: Vec<VertexId> = (0..10).collect();
        let a = random_walks(execution::seq, &ctx, &g, &starts, 5, 3);
        let b = random_walks(execution::par, &ctx, &g, &starts, 5, 3);
        assert_eq!(a.steps, b.steps);

        // On a branching graph the seed changes the trajectories (and the
        // same seed reproduces them).
        let g = GraphBuilder::from_coo(gen::gnm(40, 400, 9))
            .deduplicate()
            .build();
        let x = random_walks(execution::par, &ctx, &g, &starts, 12, 3);
        let y = random_walks(execution::par, &ctx, &g, &starts, 12, 3);
        let z = random_walks(execution::par, &ctx, &g, &starts, 12, 4);
        assert_eq!(x.steps, y.steps);
        assert_ne!(x.steps, z.steps);
    }

    #[test]
    fn dead_ends_pad_with_invalid() {
        // 0 -> 1, 1 has no out-edges.
        let g = Graph::<()>::from_coo(&Coo::from_edges(2, [(0, 1, ())]));
        let ctx = Context::sequential();
        let r = random_walks(execution::seq, &ctx, &g, &[0], 4, 1);
        let walk = r.walk(0);
        assert_eq!(walk[0], 0);
        assert_eq!(walk[1], 1);
        assert!(walk[2..].iter().all(|&v| v == INVALID_VERTEX));
    }

    #[test]
    fn monte_carlo_ppr_approximates_exact_ppr() {
        let g = GraphBuilder::from_coo(gen::gnm(30, 240, 2))
            .symmetrize()
            .deduplicate()
            .with_csc()
            .build();
        let ctx = Context::new(2);
        let exact = crate::pagerank::personalized_pagerank(
            execution::par,
            &ctx,
            &g,
            &[0],
            crate::pagerank::PrConfig::default(),
        );
        let approx = monte_carlo_ppr(execution::par, &ctx, &g, 0, 60_000, 0.85, 5);
        // Loose agreement: L1 distance under 0.12 with 60k walks.
        let l1: f64 = exact
            .rank
            .iter()
            .zip(&approx)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(l1 < 0.12, "Monte-Carlo PPR too far from exact: L1 = {l1}");
    }
}
