//! Sparse general matrix–matrix multiply (SpGEMM) over CSR operands —
//! the heavyweight linear-algebra kernel of the Gunrock essentials suite,
//! and the other direction of the graph/matrix duality the paper leans on
//! (§IV-A): `A·A` of an adjacency counts 2-hop walks.
//!
//! Row-parallel Gustavson: each output row accumulates scaled rows of `B`
//! through a dense accumulator reused per worker (the classic SpGEMM
//! structure, simplified to a per-row dense array — fine for the graph
//! sizes this library targets).

use essentials_core::prelude::*;
use essentials_graph::Csr;
use parking_lot::Mutex;

/// Computes `C = A · B` (CSR × CSR → CSR). Panics if inner dimensions
/// mismatch (`A` is n×n and `B` is n×n in adjacency usage, so both must
/// share the vertex count).
pub fn spgemm<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    a: &Csr<f32>,
    b: &Csr<f32>,
) -> Csr<f32> {
    assert_eq!(
        a.num_vertices(),
        b.num_vertices(),
        "SpGEMM operands must share the dimension"
    );
    let n = a.num_vertices();

    // Each worker owns a dense accumulator + touched-column list, reused
    // across its rows (zero allocation in the steady state).
    struct RowScratch {
        acc: Vec<f32>,
        touched: Vec<VertexId>,
    }
    let scratches: Vec<Mutex<RowScratch>> = (0..ctx.num_threads().max(1))
        .map(|_| {
            Mutex::new(RowScratch {
                acc: vec![0.0; n],
                touched: Vec::new(),
            })
        })
        .collect();

    // Compute rows in parallel into per-row sparse vectors.
    let rows: Vec<(Vec<VertexId>, Vec<f32>)> = fill_indexed(policy, ctx, n, |i| {
        // fill_indexed does not expose the worker id; key the scratch by a
        // cheap thread-local-ish hash of the OS thread. Contention-free in
        // practice (each pool worker hashes to a stable slot); a lock
        // guards correctness if two map to the same slot.
        let slot = thread_slot(scratches.len());
        let mut scratch = scratches[slot].lock();
        let RowScratch { acc, touched } = &mut *scratch;
        let row = i as VertexId;
        for (k, &av) in a.neighbors(row).iter().zip(a.neighbor_values(row)) {
            let k = *k;
            for (j, &bv) in b.neighbors(k).iter().zip(b.neighbor_values(k)) {
                let j = *j;
                if acc[j as usize] == 0.0 {
                    touched.push(j);
                }
                acc[j as usize] += av * bv;
            }
        }
        touched.sort_unstable();
        let mut cols = Vec::with_capacity(touched.len());
        let mut vals = Vec::with_capacity(touched.len());
        for &j in touched.iter() {
            let v = acc[j as usize];
            acc[j as usize] = 0.0;
            // Numerical cancellation can produce exact zeros; keep the
            // structural entry out in that case (standard SpGEMM choice).
            if v != 0.0 {
                cols.push(j);
                vals.push(v);
            }
        }
        touched.clear();
        (cols, vals)
    });

    // Assemble the CSR.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for (c, v) in rows {
        cols.extend(c);
        vals.extend(v);
        offsets.push(cols.len());
    }
    Csr::from_raw(offsets, cols, vals)
}

/// Maps the current OS thread to a stable slot in `0..k`.
fn thread_slot(k: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() as usize) % k.max(1)
}

/// Dense-reference oracle for small matrices.
pub fn spgemm_dense_reference(a: &Csr<f32>, b: &Csr<f32>) -> Vec<Vec<f32>> {
    let n = a.num_vertices();
    let mut out = vec![vec![0.0f32; n]; n];
    for i in 0..n as VertexId {
        for (k, &av) in a.neighbors(i).iter().zip(a.neighbor_values(i)) {
            for (j, &bv) in b.neighbors(*k).iter().zip(b.neighbor_values(*k)) {
                out[i as usize][*j as usize] += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;
    use essentials_graph::Coo;

    fn csr_of(n: usize, edges: &[(VertexId, VertexId, f32)]) -> Csr<f32> {
        Csr::from_coo(&Coo::from_edges(n, edges.iter().copied()))
    }

    #[test]
    fn small_known_product() {
        // A = [[0,1],[2,0]], B = [[3,0],[0,4]]: AB = [[0,4],[6,0]].
        let a = csr_of(2, &[(0, 1, 1.0), (1, 0, 2.0)]);
        let b = csr_of(2, &[(0, 0, 3.0), (1, 1, 4.0)]);
        let c = spgemm(execution::par, &Context::new(2), &a, &b);
        assert_eq!(c.neighbors(0), &[1]);
        assert_eq!(c.neighbor_values(0), &[4.0]);
        assert_eq!(c.neighbors(1), &[0]);
        assert_eq!(c.neighbor_values(1), &[6.0]);
    }

    #[test]
    fn matches_dense_reference_on_random_matrices() {
        let ctx = Context::new(4);
        for seed in [1, 9] {
            let coo = gen::gnm(40, 300, seed);
            let a = Csr::from_coo(&gen::uniform_weights(&coo, 0.5, 2.0, seed));
            let coo2 = gen::gnm(40, 250, seed + 100);
            let b = Csr::from_coo(&gen::uniform_weights(&coo2, 0.5, 2.0, seed + 1));
            let c = spgemm(execution::par, &ctx, &a, &b);
            let dense = spgemm_dense_reference(&a, &b);
            for i in 0..40u32 {
                for j in 0..40u32 {
                    let sparse_v = c
                        .neighbors(i)
                        .iter()
                        .position(|&x| x == j)
                        .map(|p| c.neighbor_values(i)[p])
                        .unwrap_or(0.0);
                    assert!(
                        (sparse_v - dense[i as usize][j as usize]).abs() < 1e-4,
                        "({i},{j}): {sparse_v} vs {}",
                        dense[i as usize][j as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn adjacency_square_counts_two_hop_walks() {
        // Path 0→1→2: A² must have exactly the entry (0,2) = 1.
        let a = csr_of(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let c = spgemm(execution::seq, &Context::sequential(), &a, &a);
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.neighbors(0), &[2]);
        assert_eq!(c.neighbor_values(0), &[1.0]);
    }

    #[test]
    fn policy_equivalence_bitwise() {
        let ctx = Context::new(4);
        let coo = gen::gnm(60, 500, 3);
        let a = Csr::from_coo(&gen::uniform_weights(&coo, 0.5, 2.0, 2));
        let c_seq = spgemm(execution::seq, &ctx, &a, &a);
        let c_par = spgemm(execution::par, &ctx, &a, &a);
        assert_eq!(c_seq, c_par);
    }

    #[test]
    fn empty_operands() {
        let a = Csr::<f32>::empty(4);
        let c = spgemm(execution::par, &Context::new(2), &a, &a);
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.num_vertices(), 4);
    }

    #[test]
    #[should_panic(expected = "share the dimension")]
    fn dimension_mismatch_panics() {
        let a = Csr::<f32>::empty(3);
        let b = Csr::<f32>::empty(4);
        spgemm(execution::seq, &Context::sequential(), &a, &b);
    }
}
