//! Betweenness centrality (Brandes) on unweighted graphs.
//!
//! Per source: a level-synchronous BFS accumulates shortest-path counts
//! (σ) with atomic adds — the forward pass is literally the Listing-3
//! expansion with a σ-accumulating lambda — then dependencies (δ) flow
//! backwards level by level. Sources are processed one at a time with
//! parallelism *inside* each pass, matching how graph frameworks structure
//! BC. [`betweenness_sequential`] is the textbook Brandes oracle.

use essentials_core::prelude::*;
use essentials_parallel::atomics::AtomicF64;
use std::sync::atomic::{AtomicU32, Ordering};

/// Level marker for unvisited vertices.
const UNVISITED: u32 = u32::MAX;

/// Parallel Brandes over the given sources (pass all vertices for exact BC;
/// a sample for approximate BC). Unweighted: every edge has length 1.
pub fn betweenness<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    sources: &[VertexId],
) -> Vec<f64> {
    let n = g.get_num_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        // ---- Forward pass: levels + path counts --------------------------
        let level: Vec<AtomicU32> = (0..n)
            .map(|i| AtomicU32::new(if i == s as usize { 0 } else { UNVISITED }))
            .collect();
        let sigma: Vec<AtomicF64> = (0..n)
            .map(|i| AtomicF64::new(if i == s as usize { 1.0 } else { 0.0 }))
            .collect();
        let mut levels: Vec<Vec<VertexId>> = vec![vec![s]];
        loop {
            let frontier = SparseFrontier::from_vec(levels.last().unwrap().clone());
            let next_level = levels.len() as u32;
            let out = neighbors_expand(policy, ctx, g, &frontier, |src, dst, _e, _w| {
                let claimed = level[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok();
                if level[dst as usize].load(Ordering::Acquire) == next_level {
                    // σ[src] is final: src settled in the previous level.
                    sigma[dst as usize].fetch_add(
                        sigma[src as usize].load(Ordering::Acquire),
                        Ordering::AcqRel,
                    );
                }
                claimed
            });
            if out.is_empty() {
                break;
            }
            levels.push(out.into_vec());
        }
        // ---- Backward pass: dependency accumulation ----------------------
        let delta: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        for l in (0..levels.len().saturating_sub(1)).rev() {
            let frontier = SparseFrontier::from_vec(levels[l].clone());
            foreach_active(policy, ctx, &frontier, |v| {
                let lv = level[v as usize].load(Ordering::Acquire);
                let sv = sigma[v as usize].load(Ordering::Acquire);
                let mut acc = 0.0;
                for &w in g.out_neighbors(v) {
                    if level[w as usize].load(Ordering::Acquire) == lv + 1 {
                        let sw = sigma[w as usize].load(Ordering::Acquire);
                        acc += sv / sw * (1.0 + delta[w as usize].load(Ordering::Acquire));
                    }
                }
                delta[v as usize].store(acc, Ordering::Release);
            });
        }
        for v in 0..n {
            if v != s as usize {
                bc[v] += delta[v].load(Ordering::Relaxed);
            }
        }
    }
    bc
}

/// Textbook sequential Brandes (oracle).
pub fn betweenness_sequential<W: EdgeValue>(g: &Graph<W>, sources: &[VertexId]) -> Vec<f64> {
    let n = g.get_num_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let mut stack: Vec<VertexId> = Vec::new();
        let mut pred: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            stack.push(v);
            for &w in g.out_neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    pred[w as usize].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &pred[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() < 1e-6 * (1.0 + x.abs()))
    }

    #[test]
    fn path_center_has_highest_bc() {
        // Undirected path of 5: exact BC (both directions as sources) is
        // 2 * (k * (n-1-k)) for vertex k.
        let g = GraphBuilder::from_coo(gen::path(5))
            .symmetrize()
            .deduplicate()
            .build();
        let sources: Vec<VertexId> = g.vertices().collect();
        let ctx = Context::new(2);
        let bc = betweenness(execution::par, &ctx, &g, &sources);
        let expected: Vec<f64> = (0..5).map(|k: i64| (2 * k * (4 - k)) as f64).collect();
        assert!(close(&bc, &expected), "{bc:?} vs {expected:?}");
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [1, 4] {
            let g = GraphBuilder::from_coo(gen::gnm(80, 400, seed))
                .symmetrize()
                .deduplicate()
                .build();
            let sources: Vec<VertexId> = g.vertices().collect();
            let par = betweenness(execution::par, &ctx, &g, &sources);
            let seq = betweenness_sequential(&g, &sources);
            assert!(close(&par, &seq), "seed {seed}");
        }
    }

    #[test]
    fn star_hub_bc() {
        // Star with k=6 leaves, undirected: hub lies on all leaf-leaf
        // shortest paths: k*(k-1) ordered pairs.
        let g = Graph::from_coo(&gen::star(7));
        let sources: Vec<VertexId> = g.vertices().collect();
        let ctx = Context::sequential();
        let bc = betweenness(execution::seq, &ctx, &g, &sources);
        assert!((bc[0] - 30.0).abs() < 1e-9);
        for b in &bc[1..7] {
            assert!(b.abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_sources_subset() {
        let g = GraphBuilder::from_coo(gen::grid2d(6, 6))
            .deduplicate()
            .build();
        let ctx = Context::new(2);
        let par = betweenness(execution::par, &ctx, &g, &[0, 7, 20]);
        let seq = betweenness_sequential(&g, &[0, 7, 20]);
        assert!(close(&par, &seq));
    }

    #[test]
    fn disconnected_source_contributes_nothing() {
        let g = Graph::from_coo(&Coo::<()>::from_edges(3, [(0, 1, ())]));
        let ctx = Context::sequential();
        let bc = betweenness(execution::seq, &ctx, &g, &[2]);
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}
