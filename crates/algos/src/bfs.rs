//! Breadth-first search — the traversal that exercises every design axis.
//!
//! Variants:
//! * [`bfs`] — push-direction BSP (Listing-3 style expansion with a
//!   claim-by-CAS visit condition);
//! * [`bfs_pull`] — all iterations pull over the CSC (§III-C);
//! * [`bfs_direction_optimizing`] — Beamer-style per-iteration switch
//!   between push and pull with the classic α/β heuristic, switching the
//!   frontier representation (sparse↔dense) along with the direction —
//!   experiment E3's subject;
//! * [`bfs_queue`] — the frontier lives in a [`QueueFrontier`]
//!   (message-passing representation, §III-B) inside an otherwise
//!   identical BSP loop — experiment E2's subject;
//! * [`bfs_async`] — whole-algorithm asynchronous execution with a
//!   monotone level relaxation (levels may be re-lowered as better paths
//!   arrive; the fixpoint equals BFS levels);
//! * [`bfs_sequential`] — the textbook queue baseline (oracle).

use essentials_core::obs::DirectionEvent;
use essentials_core::prelude::*;
use essentials_parallel::atomics::Counter;
use essentials_parallel::run_async;
use std::sync::atomic::{AtomicU32, Ordering};

/// Level not yet assigned.
pub const UNVISITED: u32 = u32::MAX;

/// BFS output: hop levels and run metadata.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `level[v]` = hop distance from the source, [`UNVISITED`] if
    /// unreachable.
    pub level: Vec<u32>,
    /// Loop statistics.
    pub stats: LoopStats,
    /// Edges inspected (work measure).
    pub edges_inspected: usize,
    /// Direction taken each iteration (all `Push` except for the
    /// direction-optimizing variant).
    pub directions: Vec<Direction>,
}

/// Traversal direction of one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Frontier scatters over out-edges.
    Push,
    /// Candidates gather over in-edges.
    Pull,
}

fn init_levels(n: usize, source: VertexId) -> Vec<AtomicU32> {
    (0..n)
        .map(|i| AtomicU32::new(if i == source as usize { 0 } else { UNVISITED }))
        .collect()
}

fn unwrap_levels(levels: Vec<AtomicU32>) -> Vec<u32> {
    levels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Push-direction BSP BFS. The expand condition claims the destination with
/// a CAS on its level, so each vertex enters the output frontier exactly
/// once and no uniquify pass is needed.
///
/// ```
/// use essentials_core::prelude::*;
/// use essentials_algos::bfs::{bfs, UNVISITED};
///
/// // 0 → 1 → 2, and 3 unreachable.
/// let g = Graph::from_coo(&Coo::<()>::from_edges(4, [(0, 1, ()), (1, 2, ())]));
/// let r = bfs(execution::par, &Context::new(2), &g, 0);
/// assert_eq!(r.level, vec![0, 1, 2, UNVISITED]);
/// ```
pub fn bfs<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let mut directions = Vec::new();
    let (_, stats) = Enactor::for_ctx(ctx).run(SparseFrontier::single(source), |iter, f| {
        directions.push(Direction::Push);
        let next_level = iter as u32 + 1;
        let out = neighbors_expand(policy, ctx, g, &f, |_src, dst, _e, _w| {
            edges.add(1);
            levels[dst as usize]
                .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        });
        // The CAS claim already deduplicates; recycling the spent frontier
        // keeps the loop allocation-free after warm-up.
        ctx.recycle_frontier(f);
        out
    });
    BfsResult {
        level: unwrap_levels(levels),
        stats,
        edges_inspected: edges.get(),
        directions,
    }
}

/// Pull-direction BSP BFS: every unvisited vertex scans its in-neighbors
/// for a frontier member. Requires the CSC (`with_csc`). The frontier is
/// dense throughout.
pub fn bfs_pull<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let mut directions = Vec::new();
    let init = DenseFrontier::new(n);
    init.insert(source);
    let (_, stats) = Enactor::for_ctx(ctx).run(init, |iter, f| {
        directions.push(Direction::Pull);
        let next_level = iter as u32 + 1;
        let (out, scanned) = expand_pull_counted(
            policy,
            ctx,
            g,
            &f,
            PullConfig { early_exit: true },
            |dst| levels[dst as usize].load(Ordering::Acquire) == UNVISITED,
            |_src, dst, _w| {
                levels[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
        );
        edges.add(scanned);
        out
    });
    BfsResult {
        level: unwrap_levels(levels),
        stats,
        edges_inspected: edges.get(),
        directions,
    }
}

/// Heuristic parameters of the direction-optimizing switch (Beamer et al.).
#[derive(Debug, Clone, Copy)]
pub struct DoParams {
    /// Switch push→pull when `frontier_out_edges > remaining_edges / alpha`.
    pub alpha: usize,
    /// Switch pull→push when `frontier_size < n / beta`.
    pub beta: usize,
}

impl Default for DoParams {
    fn default() -> Self {
        DoParams { alpha: 14, beta: 24 }
    }
}

/// Direction-optimizing BFS: picks push or pull per iteration and switches
/// the frontier representation with the direction (sparse for push, dense
/// for pull) — the abstraction's frontier-representation flexibility doing
/// real work.
pub fn bfs_direction_optimizing<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
    params: DoParams,
) -> BfsResult {
    let n = g.get_num_vertices();
    let m = g.get_num_edges();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let mut directions = Vec::new();
    let mut trace = Vec::new();

    let mut frontier = VertexFrontier::Sparse(SparseFrontier::single(source));
    let mut iter = 0u32;
    let mut unexplored_edges = m;
    let mut prev_len = 0usize;

    while frontier.len() > 0 {
        let next_level = iter + 1;
        let growing = frontier.len() > prev_len;
        prev_len = frontier.len();
        // Decide the direction from the current frontier's shape. Beamer's
        // heuristic: go pull only while the frontier is still growing —
        // shrinking frontiers (the long tail on meshes) stay push.
        let (dir, frontier_edges) = match &frontier {
            VertexFrontier::Sparse(s) => {
                let frontier_edges: usize = s.iter().map(|v| g.out_degree(v)).sum();
                let dir = if growing && frontier_edges > unexplored_edges / params.alpha.max(1) {
                    Direction::Pull
                } else {
                    Direction::Push
                };
                (dir, frontier_edges)
            }
            VertexFrontier::Dense(d) => {
                // The β rule decides from the frontier's cardinality alone;
                // no edge count is computed on the dense side.
                let dir = if d.len() < n / params.beta.max(1) {
                    Direction::Push
                } else {
                    Direction::Pull
                };
                (dir, 0)
            }
        };
        directions.push(dir);
        if let Some(sink) = ctx.obs() {
            sink.on_direction(&DirectionEvent {
                iteration: iter as usize,
                frontier_len: frontier.len(),
                frontier_edges,
                unexplored_edges,
                growing,
                pull: dir == Direction::Pull,
            });
        }

        frontier = match dir {
            Direction::Push => {
                let sparse = frontier.into_sparse();
                unexplored_edges =
                    unexplored_edges.saturating_sub(sparse.iter().map(|v| g.out_degree(v)).sum());
                let out = neighbors_expand(policy, ctx, g, &sparse, |_src, dst, _e, _w| {
                    edges.add(1);
                    levels[dst as usize]
                        .compare_exchange(
                            UNVISITED,
                            next_level,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                });
                ctx.recycle_frontier(sparse);
                VertexFrontier::Sparse(out)
            }
            Direction::Pull => {
                let dense = frontier.into_dense(n);
                unexplored_edges =
                    unexplored_edges.saturating_sub(dense.iter().map(|v| g.out_degree(v)).sum());
                let (out, scanned) = expand_pull_counted(
                    policy,
                    ctx,
                    g,
                    &dense,
                    PullConfig { early_exit: true },
                    |dst| levels[dst as usize].load(Ordering::Acquire) == UNVISITED,
                    |_src, dst, _w| {
                        levels[dst as usize]
                            .compare_exchange(
                                UNVISITED,
                                next_level,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    },
                );
                edges.add(scanned);
                VertexFrontier::Dense(out)
            }
        };
        trace.push(frontier.len());
        iter += 1;
    }

    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations: iter as usize,
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        edges_inspected: edges.get(),
        directions,
    }
}

/// BFS with a **dense bitmap** frontier throughout, still traversing in the
/// push direction: each iteration walks the bitmap's set bits and expands
/// into a fresh bitmap. Measures pure representation cost against the
/// sparse-vector and queue variants (experiment E2) — insertion is
/// idempotent (no uniquify), but iteration pays an O(n/64) scan even when
/// few bits are set.
pub fn bfs_dense<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let init = DenseFrontier::new(n);
    init.insert(source);
    let (_, stats) = Enactor::for_ctx(ctx).run(init, |iter, f| {
        let next_level = iter as u32 + 1;
        // Walk the bitmap; expand push-style into the next bitmap.
        let active: SparseFrontier = f.iter().collect();
        expand_push_dense(policy, ctx, g, &active, |_src, dst, _e, _w| {
            edges.add(1);
            levels[dst as usize]
                .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        })
    });
    BfsResult {
        level: unwrap_levels(levels),
        stats,
        edges_inspected: edges.get(),
        directions: Vec::new(),
    }
}

/// BFS with the frontier represented as a message queue (§III-B): each
/// expansion *sends* newly visited vertices into the queue; each iteration
/// *receives* by draining it. Same BSP structure, different communication
/// substrate.
pub fn bfs_queue<W: EdgeValue>(ctx: &Context, g: &Graph<W>, source: VertexId) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let queue = QueueFrontier::new(ctx.num_threads());
    queue.push(0, source);
    let mut iterations = 0usize;
    let mut trace = Vec::new();
    while !queue.is_empty() {
        let current = SparseFrontier::from_vec(queue.drain());
        let next_level = iterations as u32 + 1;
        // Expand; sends go straight into the queue.
        for_each_edge_balanced(ctx, g, current.as_slice(), |tid, _src, e| {
            let dst = g.get_dest_vertex(e);
            edges.add(1);
            if levels[dst as usize]
                .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                queue.push(tid, dst);
            }
        });
        iterations += 1;
        trace.push(queue.len());
    }
    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations,
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        edges_inspected: edges.get(),
        directions: vec![Direction::Push; iterations],
    }
}

/// Fully asynchronous BFS: monotone level relaxation
/// (`level[dst] = min(level[dst], level[src]+1)`) through the work-queue
/// engine. A vertex may be processed multiple times as better levels
/// arrive; the fixpoint equals the BFS levels.
pub fn bfs_async<W: EdgeValue>(ctx: &Context, g: &Graph<W>, source: VertexId) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let stats = run_async(ctx.pool(), vec![source], |v: VertexId, pusher| {
        let lv = levels[v as usize].load(Ordering::Acquire);
        let cand = lv.saturating_add(1);
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e);
            edges.add(1);
            if levels[dst as usize].fetch_min(cand, Ordering::AcqRel) > cand {
                pusher.push(dst);
            }
        }
    });
    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations: 1,
            frontier_trace: vec![stats.processed],
            hit_iteration_cap: false,
        },
        edges_inspected: edges.get(),
        directions: vec![Direction::Push],
    }
}

/// Textbook sequential BFS (the oracle).
pub fn bfs_sequential<W: EdgeValue>(g: &Graph<W>, source: VertexId) -> BfsResult {
    let n = g.get_num_vertices();
    let mut level = vec![UNVISITED; n];
    level[source as usize] = 0;
    let mut edges = 0usize;
    let mut q = std::collections::VecDeque::new();
    q.push_back(source);
    let mut max_level = 0;
    while let Some(v) = q.pop_front() {
        let lv = level[v as usize];
        for e in g.get_edges(v) {
            edges += 1;
            let dst = g.get_dest_vertex(e);
            if level[dst as usize] == UNVISITED {
                level[dst as usize] = lv + 1;
                max_level = max_level.max(lv + 1);
                q.push_back(dst);
            }
        }
    }
    BfsResult {
        level,
        stats: LoopStats {
            iterations: max_level as usize + 1,
            frontier_trace: Vec::new(),
            hit_iteration_cap: false,
        },
        edges_inspected: edges,
        directions: Vec::new(),
    }
}

/// Verifies BFS levels against the definition: `level[source] == 0`; every
/// edge spans at most one level downward-to-upward
/// (`level[dst] ≤ level[src] + 1`); every visited vertex at level k > 0 has
/// an in... (witnessed by a level-(k-1) in-edge, checked via out-edges scan);
/// unvisited vertices have no visited in-neighbor.
pub fn verify_bfs<W: EdgeValue>(g: &Graph<W>, source: VertexId, level: &[u32]) -> bool {
    if level.len() != g.get_num_vertices() || level[source as usize] != 0 {
        return false;
    }
    let mut witnessed = vec![false; level.len()];
    witnessed[source as usize] = true;
    for v in g.vertices() {
        let lv = level[v as usize];
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e) as usize;
            if lv != UNVISITED {
                // Reachable vertices must reach their successors.
                if level[dst] == UNVISITED || level[dst] > lv + 1 {
                    return false;
                }
                if level[dst] == lv + 1 {
                    witnessed[dst] = true;
                }
            }
        }
    }
    level
        .iter()
        .zip(&witnessed)
        .all(|(&l, &w)| l == UNVISITED || l == 0 || w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn graphs() -> Vec<Graph<()>> {
        vec![
            Graph::from_coo(&gen::rmat(9, 8, gen::RmatParams::default(), 3)).with_csc(),
            Graph::from_coo(&gen::grid2d(20, 20)).with_csc(),
            Graph::from_coo(&gen::binary_tree(127)).with_csc(),
            Graph::from_coo(&gen::star(64)).with_csc(),
        ]
    }

    #[test]
    fn all_variants_agree_with_sequential() {
        let ctx = Context::new(4);
        for (gi, g) in graphs().iter().enumerate() {
            let oracle = bfs_sequential(g, 0);
            assert!(verify_bfs(g, 0, &oracle.level), "oracle invalid on g{gi}");
            let variants: Vec<(&str, Vec<u32>)> = vec![
                ("push_seq", bfs(execution::seq, &ctx, g, 0).level),
                ("push_par", bfs(execution::par, &ctx, g, 0).level),
                ("push_nosync", bfs(execution::par_nosync, &ctx, g, 0).level),
                ("pull", bfs_pull(execution::par, &ctx, g, 0).level),
                (
                    "do",
                    bfs_direction_optimizing(execution::par, &ctx, g, 0, DoParams::default())
                        .level,
                ),
                ("dense", bfs_dense(execution::par, &ctx, g, 0).level),
                ("queue", bfs_queue(&ctx, g, 0).level),
                ("async", bfs_async(&ctx, g, 0).level),
            ];
            for (name, level) in variants {
                assert_eq!(level, oracle.level, "{name} diverged on graph {gi}");
            }
        }
    }

    #[test]
    fn direction_optimizing_actually_switches_on_dense_graphs() {
        let ctx = Context::new(2);
        // A star from the hub: frontier covers the whole graph at iter 1.
        let g = Graph::from_coo(&gen::star(1000)).with_csc();
        let r = bfs_direction_optimizing(
            execution::par,
            &ctx,
            &g,
            0,
            DoParams { alpha: 14, beta: 24 },
        );
        assert!(
            r.directions.contains(&Direction::Pull),
            "expected at least one pull iteration, got {:?}",
            r.directions
        );
    }

    #[test]
    fn grid_stays_push_throughout() {
        let ctx = Context::new(2);
        let g = Graph::from_coo(&gen::grid2d(30, 30)).with_csc();
        let r = bfs_direction_optimizing(execution::par, &ctx, &g, 0, DoParams::default());
        assert!(
            r.directions.iter().all(|&d| d == Direction::Push),
            "grids never have dense frontiers: {:?}",
            r.directions
        );
    }

    #[test]
    fn levels_on_path_equal_position() {
        let ctx = Context::sequential();
        let g = Graph::from_coo(&gen::path(30)).with_csc();
        let r = bfs(execution::par, &ctx, &g, 0);
        for (v, &l) in r.level.iter().enumerate() {
            assert_eq!(l, v as u32);
        }
        assert_eq!(r.stats.iterations, 30);
    }

    #[test]
    fn unreachable_marked_unvisited() {
        let g = Graph::from_coo(&Coo::<()>::from_edges(3, [(0, 1, ())])).with_csc();
        let ctx = Context::sequential();
        for level in [
            bfs(execution::par, &ctx, &g, 0).level,
            bfs_pull(execution::par, &ctx, &g, 0).level,
            bfs_async(&ctx, &g, 0).level,
        ] {
            assert_eq!(level, vec![0, 1, UNVISITED]);
            assert!(verify_bfs(&g, 0, &level));
        }
    }

    #[test]
    fn verifier_rejects_bad_levels() {
        let g = Graph::from_coo(&Coo::<()>::from_edges(3, [(0, 1, ()), (1, 2, ())]));
        assert!(!verify_bfs(&g, 0, &[0, 2, 3])); // skips a level
        assert!(!verify_bfs(&g, 0, &[0, 1, UNVISITED])); // reachable but unvisited
        assert!(!verify_bfs(&g, 0, &[0, 1, 1])); // unwitnessed level
        assert!(verify_bfs(&g, 0, &[0, 1, 2]));
    }

    #[test]
    fn source_out_of_nowhere_single_vertex() {
        let g = Graph::from_coo(&Coo::<()>::new(1)).with_csc();
        let ctx = Context::sequential();
        let r = bfs(execution::par, &ctx, &g, 0);
        assert_eq!(r.level, vec![0]);
    }
}
