//! Breadth-first search — the traversal that exercises every design axis.
//!
//! Variants:
//! * [`bfs`] — push-direction BSP (Listing-3 style expansion with a
//!   claim-by-CAS visit condition);
//! * [`bfs_pull`] — all iterations pull over the CSC (§III-C);
//! * [`bfs_direction_optimizing`] — Beamer-style per-iteration switch
//!   between push and pull with the classic α/β heuristic, switching the
//!   frontier representation (sparse↔dense) along with the direction —
//!   experiment E3's subject;
//! * [`bfs_queue`] — the frontier lives in a [`QueueFrontier`]
//!   (message-passing representation, §III-B) inside an otherwise
//!   identical BSP loop — experiment E2's subject;
//! * [`bfs_async`] — whole-algorithm asynchronous execution with a
//!   monotone level relaxation (levels may be re-lowered as better paths
//!   arrive; the fixpoint equals BFS levels);
//! * [`bfs_sequential`] — the textbook queue baseline (oracle).

pub use essentials_core::prelude::Direction;
use essentials_core::prelude::*;
use essentials_parallel::atomics::Counter;
use essentials_parallel::run_async;
use std::sync::atomic::{AtomicU32, Ordering};

/// Level not yet assigned.
pub const UNVISITED: u32 = u32::MAX;

/// BFS output: hop levels and run metadata.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `level[v]` = hop distance from the source, [`UNVISITED`] if
    /// unreachable.
    pub level: Vec<u32>,
    /// Loop statistics.
    pub stats: LoopStats,
    /// Edges inspected (work measure).
    pub edges_inspected: usize,
    /// Direction taken each iteration (all `Push` except for the
    /// direction-optimizing variant).
    pub directions: Vec<Direction>,
}

// `Direction` now lives in the core operator layer (the adaptive engine
// decides it); re-exported here so existing `bfs::Direction` users keep
// compiling. The glob prelude import above already brings it into scope.

fn init_levels(n: usize, source: VertexId) -> Vec<AtomicU32> {
    (0..n)
        .map(|i| AtomicU32::new(if i == source as usize { 0 } else { UNVISITED }))
        .collect()
}

fn unwrap_levels(levels: Vec<AtomicU32>) -> Vec<u32> {
    levels.into_iter().map(AtomicU32::into_inner).collect()
}

/// Push-direction BSP BFS. The expand condition claims the destination with
/// a CAS on its level, so each vertex enters the output frontier exactly
/// once and no uniquify pass is needed.
///
/// ```
/// use essentials_core::prelude::*;
/// use essentials_algos::bfs::{bfs, UNVISITED};
///
/// // 0 → 1 → 2, and 3 unreachable.
/// let g = Graph::from_coo(&Coo::<()>::from_edges(4, [(0, 1, ()), (1, 2, ())]));
/// let r = bfs(execution::par, &Context::new(2), &g, 0);
/// assert_eq!(r.level, vec![0, 1, 2, UNVISITED]);
/// ```
pub fn bfs<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    match try_bfs(policy, ctx, g, source) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`bfs`]: the context's [`RunBudget`] is checked at iteration
/// boundaries (by the enactor) and chunk boundaries (inside the advance),
/// fault-plan injections fire at their exact `(iteration, chunk)`
/// coordinates, and a panic in a worker surfaces as
/// [`ExecError::WorkerPanic`] instead of aborting the process. After any
/// error the context is fully reusable — the next run on the same context
/// matches the sequential oracle bit-for-bit (`tests/resilience.rs`).
pub fn try_bfs<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> Result<BfsResult, ExecError> {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let mut directions = Vec::new();
    let (_, stats) = Enactor::for_ctx(ctx).try_run(SparseFrontier::single(source), |iter, f| {
        directions.push(Direction::Push);
        let next_level = iter as u32 + 1;
        let out = try_neighbors_expand(policy, ctx, g, &f, |_src, dst, _e, _w| {
            edges.add(1);
            levels[dst as usize]
                .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        })?;
        // The CAS claim already deduplicates; recycling the spent frontier
        // keeps the loop allocation-free after warm-up.
        ctx.recycle_frontier(f);
        Ok(out)
    })?;
    Ok(BfsResult {
        level: unwrap_levels(levels),
        stats,
        edges_inspected: edges.get(),
        directions,
    })
}

/// Pull-direction BSP BFS: every unvisited vertex scans its in-neighbors
/// for a frontier member. Requires the CSC (`with_csc`). The frontier is
/// dense throughout.
pub fn bfs_pull<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let mut directions = Vec::new();
    let init = DenseFrontier::new(n);
    init.insert(source);
    let (last, stats) = Enactor::for_ctx(ctx).run(init, |iter, f| {
        directions.push(Direction::Pull);
        let next_level = iter as u32 + 1;
        let (out, scanned) = expand_pull_counted(
            policy,
            ctx,
            g,
            &f,
            PullConfig { early_exit: true },
            |dst| levels[dst as usize].load(Ordering::Acquire) == UNVISITED,
            |_src, dst, _w| {
                levels[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
        );
        edges.add(scanned);
        // The consumed bitmap goes back to the pool; the next iteration's
        // expansion draws from it instead of allocating.
        ctx.recycle_dense_frontier(f);
        out
    });
    ctx.recycle_dense_frontier(last);
    BfsResult {
        level: unwrap_levels(levels),
        stats,
        edges_inspected: edges.get(),
        directions,
    }
}

/// Heuristic parameters of the direction-optimizing switch (Beamer et al.).
#[derive(Debug, Clone, Copy)]
pub struct DoParams {
    /// Switch push→pull when `frontier_out_edges > remaining_edges / alpha`.
    pub alpha: usize,
    /// Switch pull→push when `frontier_size < n / beta`.
    pub beta: usize,
}

impl Default for DoParams {
    fn default() -> Self {
        DoParams {
            alpha: 14,
            beta: 24,
        }
    }
}

impl DoParams {
    /// The equivalent engine policy (BFS keeps the classic α/β knobs; the
    /// γ/dwell knobs take their defaults).
    pub fn to_policy(self) -> DirectionPolicy {
        DirectionPolicy {
            alpha: self.alpha,
            beta: self.beta,
            ..DirectionPolicy::default()
        }
    }
}

/// Direction-optimizing BFS: delegates the per-iteration push/pull decision
/// (and the sparse↔dense representation switch that rides along) to the
/// core adaptive advance engine. BFS supplies only its two views of the
/// claim-by-CAS visit update; [`advance_adaptive`] owns the heuristic,
/// the unvisited-candidates mask (masked word-parallel pull), the frontier
/// recycling, and the `DirectionEvent` emission.
pub fn bfs_direction_optimizing<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
    params: DoParams,
) -> BfsResult {
    bfs_with_policy(policy, ctx, g, source, params.to_policy())
}

/// BFS through the adaptive engine with a fully-specified
/// [`DirectionPolicy`] (all four knobs, where [`DoParams`] exposes only the
/// classic α/β pair).
pub fn bfs_with_policy<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
    dir_policy: DirectionPolicy,
) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let mut engine = AdaptiveAdvance::new(
        g,
        AdaptiveConfig {
            policy: dir_policy,
            // A visited vertex never re-candidates, and one admitting
            // in-edge settles a pull destination.
            early_exit: true,
            settle: true,
            bins: BlockedConfig::default(),
        },
    );
    let mut trace = Vec::new();

    let mut frontier = VertexFrontier::Sparse(SparseFrontier::single(source));
    while frontier.len() > 0 {
        let next_level = engine.iterations() as u32 + 1;
        frontier = advance_adaptive(
            policy,
            ctx,
            g,
            &mut engine,
            frontier,
            |_src, dst, _e, _w| {
                levels[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
            |dst| levels[dst as usize].load(Ordering::Acquire) == UNVISITED,
            |_src, dst, _w| {
                levels[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
        );
        trace.push(frontier.len());
    }
    engine.finish(ctx);

    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations: engine.iterations(),
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        edges_inspected: engine.edges_inspected(),
        directions: engine.directions().to_vec(),
    }
}

/// [`bfs_direction_optimizing`] with the default policy — the "just give me
/// the adaptive traversal" entry point matching `sssp_adaptive`/`cc_adaptive`.
pub fn bfs_adaptive<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    bfs_direction_optimizing(policy, ctx, g, source, DoParams::default())
}

/// Adaptive BFS over byte-coded compressed adjacency: identical structure
/// to [`bfs_with_policy`], dispatched through
/// [`advance_adaptive_compressed`] so every iteration streams
/// [`NeighborDecoder`]s instead of raw CSR slices. Works for any graph
/// exposing the decode traits — an in-memory [`CompressedGraph`] or a
/// borrowed [`CompressedGraphView`] over an mmapped container. The claim
/// update is the same CAS, so levels are bit-identical to the raw variants
/// (`tests/differential.rs`).
pub fn bfs_adaptive_compressed<P, W, G>(
    policy: P,
    ctx: &Context,
    g: &G,
    source: VertexId,
    dir_policy: DirectionPolicy,
) -> BfsResult
where
    P: ExecutionPolicy,
    W: EdgeValue,
    G: DecodeEdgeWeights<W> + DecodeInEdgeWeights<W> + Sync,
{
    let n = g.num_vertices();
    let levels = init_levels(n, source);
    let mut engine = AdaptiveAdvance::new(
        g,
        AdaptiveConfig {
            policy: dir_policy,
            early_exit: true,
            settle: true,
            bins: BlockedConfig::default(),
        },
    );
    let mut trace = Vec::new();

    let mut frontier = VertexFrontier::Sparse(SparseFrontier::single(source));
    while frontier.len() > 0 {
        let next_level = engine.iterations() as u32 + 1;
        frontier = advance_adaptive_compressed(
            policy,
            ctx,
            g,
            &mut engine,
            frontier,
            |_src, dst, _e, _w| {
                levels[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
            |dst| levels[dst as usize].load(Ordering::Acquire) == UNVISITED,
            |_src, dst, _w| {
                levels[dst as usize]
                    .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
        );
        trace.push(frontier.len());
    }
    engine.finish(ctx);

    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations: engine.iterations(),
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        edges_inspected: engine.edges_inspected(),
        directions: engine.directions().to_vec(),
    }
}

/// BFS with a **dense bitmap** frontier throughout, still traversing in the
/// push direction: each iteration walks the bitmap's set bits and expands
/// into a fresh bitmap. Measures pure representation cost against the
/// sparse-vector and queue variants (experiment E2) — insertion is
/// idempotent (no uniquify), but iteration pays an O(n/64) scan even when
/// few bits are set.
pub fn bfs_dense<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let init = DenseFrontier::new(n);
    init.insert(source);
    let (last, stats) = Enactor::for_ctx(ctx).run(init, |iter, f| {
        let next_level = iter as u32 + 1;
        // Walk the bitmap; expand push-style into the next bitmap.
        let active: SparseFrontier = f.iter().collect();
        // The consumed bitmap goes back to the pool before expansion so the
        // fresh output bitmap can reuse its words.
        ctx.recycle_dense_frontier(f);
        expand_push_dense(policy, ctx, g, &active, |_src, dst, _e, _w| {
            edges.add(1);
            levels[dst as usize]
                .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        })
    });
    ctx.recycle_dense_frontier(last);
    BfsResult {
        level: unwrap_levels(levels),
        stats,
        edges_inspected: edges.get(),
        directions: Vec::new(),
    }
}

/// BFS with the frontier represented as a message queue (§III-B): each
/// expansion *sends* newly visited vertices into the queue; each iteration
/// *receives* by draining it. Same BSP structure, different communication
/// substrate.
pub fn bfs_queue<W: EdgeValue>(ctx: &Context, g: &Graph<W>, source: VertexId) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let queue = QueueFrontier::new(ctx.num_threads());
    queue.push(0, source);
    let mut iterations = 0usize;
    let mut trace = Vec::new();
    while !queue.is_empty() {
        let current = SparseFrontier::from_vec(queue.drain());
        let next_level = iterations as u32 + 1;
        // Expand; sends go straight into the queue.
        for_each_edge_balanced(ctx, g, current.as_slice(), |tid, _src, e| {
            let dst = g.get_dest_vertex(e);
            edges.add(1);
            if levels[dst as usize]
                .compare_exchange(UNVISITED, next_level, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                queue.push(tid, dst);
            }
        });
        iterations += 1;
        trace.push(queue.len());
    }
    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations,
            frontier_trace: trace,
            hit_iteration_cap: false,
        },
        edges_inspected: edges.get(),
        directions: vec![Direction::Push; iterations],
    }
}

/// Fully asynchronous BFS: monotone level relaxation
/// (`level[dst] = min(level[dst], level[src]+1)`) through the work-queue
/// engine. A vertex may be processed multiple times as better levels
/// arrive; the fixpoint equals the BFS levels.
pub fn bfs_async<W: EdgeValue>(ctx: &Context, g: &Graph<W>, source: VertexId) -> BfsResult {
    let n = g.get_num_vertices();
    let levels = init_levels(n, source);
    let edges = Counter::new();
    let stats = run_async(ctx.pool(), vec![source], |v: VertexId, pusher| {
        let lv = levels[v as usize].load(Ordering::Acquire);
        let cand = lv.saturating_add(1);
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e);
            edges.add(1);
            if levels[dst as usize].fetch_min(cand, Ordering::AcqRel) > cand {
                pusher.push(dst);
            }
        }
    });
    BfsResult {
        level: unwrap_levels(levels),
        stats: LoopStats {
            iterations: 1,
            frontier_trace: vec![stats.processed],
            hit_iteration_cap: false,
        },
        edges_inspected: edges.get(),
        directions: vec![Direction::Push],
    }
}

/// Textbook sequential BFS (the oracle).
pub fn bfs_sequential<W: EdgeValue>(g: &Graph<W>, source: VertexId) -> BfsResult {
    let n = g.get_num_vertices();
    let mut level = vec![UNVISITED; n];
    level[source as usize] = 0;
    let mut edges = 0usize;
    let mut q = std::collections::VecDeque::new();
    q.push_back(source);
    let mut max_level = 0;
    while let Some(v) = q.pop_front() {
        let lv = level[v as usize];
        for e in g.get_edges(v) {
            edges += 1;
            let dst = g.get_dest_vertex(e);
            if level[dst as usize] == UNVISITED {
                level[dst as usize] = lv + 1;
                max_level = max_level.max(lv + 1);
                q.push_back(dst);
            }
        }
    }
    BfsResult {
        level,
        stats: LoopStats {
            iterations: max_level as usize + 1,
            frontier_trace: Vec::new(),
            hit_iteration_cap: false,
        },
        edges_inspected: edges,
        directions: Vec::new(),
    }
}

/// Verifies BFS levels against the definition: `level[source] == 0`; every
/// edge spans at most one level downward-to-upward
/// (`level[dst] ≤ level[src] + 1`); every visited vertex at level k > 0 has
/// an in... (witnessed by a level-(k-1) in-edge, checked via out-edges scan);
/// unvisited vertices have no visited in-neighbor.
pub fn verify_bfs<W: EdgeValue>(g: &Graph<W>, source: VertexId, level: &[u32]) -> bool {
    if level.len() != g.get_num_vertices() || level[source as usize] != 0 {
        return false;
    }
    let mut witnessed = vec![false; level.len()];
    witnessed[source as usize] = true;
    for v in g.vertices() {
        let lv = level[v as usize];
        for e in g.get_edges(v) {
            let dst = g.get_dest_vertex(e) as usize;
            if lv != UNVISITED {
                // Reachable vertices must reach their successors.
                if level[dst] == UNVISITED || level[dst] > lv + 1 {
                    return false;
                }
                if level[dst] == lv + 1 {
                    witnessed[dst] = true;
                }
            }
        }
    }
    level
        .iter()
        .zip(&witnessed)
        .all(|(&l, &w)| l == UNVISITED || l == 0 || w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn graphs() -> Vec<Graph<()>> {
        vec![
            Graph::from_coo(&gen::rmat(9, 8, gen::RmatParams::default(), 3)).with_csc(),
            Graph::from_coo(&gen::grid2d(20, 20)).with_csc(),
            Graph::from_coo(&gen::binary_tree(127)).with_csc(),
            Graph::from_coo(&gen::star(64)).with_csc(),
        ]
    }

    #[test]
    fn all_variants_agree_with_sequential() {
        let ctx = Context::new(4);
        for (gi, g) in graphs().iter().enumerate() {
            let oracle = bfs_sequential(g, 0);
            assert!(verify_bfs(g, 0, &oracle.level), "oracle invalid on g{gi}");
            let variants: Vec<(&str, Vec<u32>)> = vec![
                ("push_seq", bfs(execution::seq, &ctx, g, 0).level),
                ("push_par", bfs(execution::par, &ctx, g, 0).level),
                ("push_nosync", bfs(execution::par_nosync, &ctx, g, 0).level),
                ("pull", bfs_pull(execution::par, &ctx, g, 0).level),
                (
                    "do",
                    bfs_direction_optimizing(execution::par, &ctx, g, 0, DoParams::default()).level,
                ),
                ("dense", bfs_dense(execution::par, &ctx, g, 0).level),
                ("queue", bfs_queue(&ctx, g, 0).level),
                ("async", bfs_async(&ctx, g, 0).level),
            ];
            for (name, level) in variants {
                assert_eq!(level, oracle.level, "{name} diverged on graph {gi}");
            }
        }
    }

    #[test]
    fn direction_optimizing_actually_switches_on_dense_graphs() {
        let ctx = Context::new(2);
        // A star from the hub: frontier covers the whole graph at iter 1.
        let g = Graph::from_coo(&gen::star(1000)).with_csc();
        let r = bfs_direction_optimizing(
            execution::par,
            &ctx,
            &g,
            0,
            DoParams {
                alpha: 14,
                beta: 24,
            },
        );
        assert!(
            r.directions.contains(&Direction::Pull),
            "expected at least one pull iteration, got {:?}",
            r.directions
        );
    }

    #[test]
    fn grid_stays_push_throughout() {
        let ctx = Context::new(2);
        let g = Graph::from_coo(&gen::grid2d(30, 30)).with_csc();
        let r = bfs_direction_optimizing(execution::par, &ctx, &g, 0, DoParams::default());
        assert!(
            r.directions.iter().all(|&d| d == Direction::Push),
            "grids never have dense frontiers: {:?}",
            r.directions
        );
    }

    #[test]
    fn levels_on_path_equal_position() {
        let ctx = Context::sequential();
        let g = Graph::from_coo(&gen::path(30)).with_csc();
        let r = bfs(execution::par, &ctx, &g, 0);
        for (v, &l) in r.level.iter().enumerate() {
            assert_eq!(l, v as u32);
        }
        assert_eq!(r.stats.iterations, 30);
    }

    #[test]
    fn unreachable_marked_unvisited() {
        let g = Graph::from_coo(&Coo::<()>::from_edges(3, [(0, 1, ())])).with_csc();
        let ctx = Context::sequential();
        for level in [
            bfs(execution::par, &ctx, &g, 0).level,
            bfs_pull(execution::par, &ctx, &g, 0).level,
            bfs_async(&ctx, &g, 0).level,
        ] {
            assert_eq!(level, vec![0, 1, UNVISITED]);
            assert!(verify_bfs(&g, 0, &level));
        }
    }

    #[test]
    fn verifier_rejects_bad_levels() {
        let g = Graph::from_coo(&Coo::<()>::from_edges(3, [(0, 1, ()), (1, 2, ())]));
        assert!(!verify_bfs(&g, 0, &[0, 2, 3])); // skips a level
        assert!(!verify_bfs(&g, 0, &[0, 1, UNVISITED])); // reachable but unvisited
        assert!(!verify_bfs(&g, 0, &[0, 1, 1])); // unwitnessed level
        assert!(verify_bfs(&g, 0, &[0, 1, 2]));
    }

    #[test]
    fn source_out_of_nowhere_single_vertex() {
        let g = Graph::from_coo(&Coo::<()>::new(1)).with_csc();
        let ctx = Context::sequential();
        let r = bfs(execution::par, &ctx, &g, 0);
        assert_eq!(r.level, vec![0]);
    }
}
