//! Diameter and eccentricity estimation on unweighted graphs.
//!
//! Exact diameters need all-pairs BFS; the standard estimator is the
//! *double sweep*: BFS from any vertex, then BFS again from the farthest
//! vertex found — the second eccentricity is a lower bound that is exact on
//! trees and empirically tight on most real graphs. [`diameter_multi_sweep`]
//! iterates the idea from several periphery vertices for a tighter bound.
//! Composed entirely from the BFS building block.

use essentials_core::prelude::*;

use crate::bfs::{bfs, UNVISITED};

/// Result of a diameter estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiameterEstimate {
    /// Lower bound on the diameter (exact on trees; exact whenever
    /// `sweeps` saturates the periphery).
    pub diameter_lower_bound: u32,
    /// Endpoints of the longest shortest path found.
    pub endpoints: (VertexId, VertexId),
    /// BFS sweeps performed.
    pub sweeps: usize,
}

/// Farthest visited vertex and its level from a BFS result.
fn farthest(level: &[u32]) -> Option<(VertexId, u32)> {
    level
        .iter()
        .enumerate()
        .filter(|(_, &l)| l != UNVISITED)
        .max_by_key(|(_, &l)| l)
        .map(|(v, &l)| (v as VertexId, l))
}

/// Classic double sweep from `start` (2 BFS runs).
pub fn diameter_double_sweep<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    start: VertexId,
) -> DiameterEstimate {
    let first = bfs(policy, ctx, g, start);
    let Some((a, _)) = farthest(&first.level) else {
        return DiameterEstimate {
            diameter_lower_bound: 0,
            endpoints: (start, start),
            sweeps: 1,
        };
    };
    let second = bfs(policy, ctx, g, a);
    let (b, ecc) = farthest(&second.level).unwrap_or((a, 0));
    DiameterEstimate {
        diameter_lower_bound: ecc,
        endpoints: (a, b),
        sweeps: 2,
    }
}

/// Iterated double sweep: keeps sweeping from the newest far endpoint until
/// the bound stops improving or `max_sweeps` is reached.
pub fn diameter_multi_sweep<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    start: VertexId,
    max_sweeps: usize,
) -> DiameterEstimate {
    let mut best = DiameterEstimate {
        diameter_lower_bound: 0,
        endpoints: (start, start),
        sweeps: 0,
    };
    let mut from = start;
    for sweep in 1..=max_sweeps.max(1) {
        let r = bfs(policy, ctx, g, from);
        let Some((far, ecc)) = farthest(&r.level) else {
            best.sweeps = sweep;
            break;
        };
        best.sweeps = sweep;
        if ecc > best.diameter_lower_bound {
            best.diameter_lower_bound = ecc;
            best.endpoints = (from, far);
            from = far;
        } else {
            break; // no improvement: the sweep has converged
        }
    }
    best
}

/// Exact eccentricity of one vertex (its BFS depth over reachable
/// vertices).
pub fn eccentricity<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    v: VertexId,
) -> u32 {
    farthest(&bfs(policy, ctx, g, v).level).map_or(0, |(_, e)| e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    fn und(coo: essentials_graph::Coo<()>) -> Graph<()> {
        GraphBuilder::from_coo(coo)
            .symmetrize()
            .deduplicate()
            .build()
    }

    #[test]
    fn exact_on_paths() {
        let g = und(gen::path(40));
        let ctx = Context::new(2);
        // Double sweep from the middle still finds the true diameter.
        let d = diameter_double_sweep(execution::par, &ctx, &g, 20);
        assert_eq!(d.diameter_lower_bound, 39);
        let (a, b) = d.endpoints;
        assert!((a == 0 && b == 39) || (a == 39 && b == 0));
    }

    #[test]
    fn exact_on_grids() {
        // Diameter of an r×c grid is (r-1)+(c-1).
        let g = und(gen::grid2d(7, 11));
        let ctx = Context::new(2);
        let d = diameter_multi_sweep(execution::par, &ctx, &g, 40, 8);
        assert_eq!(d.diameter_lower_bound, 6 + 10);
    }

    #[test]
    fn star_diameter_is_two() {
        let g = und(gen::star(50));
        let ctx = Context::new(2);
        // Starting at the hub, the first sweep sees ecc 1; the second finds 2.
        let d = diameter_double_sweep(execution::par, &ctx, &g, 0);
        assert_eq!(d.diameter_lower_bound, 2);
    }

    #[test]
    fn eccentricity_of_path_endpoints_and_center() {
        let g = und(gen::path(9));
        let ctx = Context::sequential();
        assert_eq!(eccentricity(execution::seq, &ctx, &g, 0), 8);
        assert_eq!(eccentricity(execution::seq, &ctx, &g, 4), 4);
    }

    #[test]
    fn isolated_vertex_has_zero_bound() {
        let g = Graph::<()>::from_coo(&Coo::new(3));
        let ctx = Context::sequential();
        let d = diameter_double_sweep(execution::seq, &ctx, &g, 1);
        assert_eq!(d.diameter_lower_bound, 0);
    }

    #[test]
    fn multi_sweep_never_worse_than_double_sweep() {
        let ctx = Context::new(2);
        for seed in [1, 5] {
            let g = und(gen::gnm(150, 450, seed));
            let d2 = diameter_double_sweep(execution::par, &ctx, &g, 0);
            let dm = diameter_multi_sweep(execution::par, &ctx, &g, 0, 6);
            assert!(dm.diameter_lower_bound >= d2.diameter_lower_bound);
        }
    }
}
