//! HITS (Kleinberg's hubs & authorities) — power iteration using both
//! traversal directions at once: authority scores gather over in-edges
//! (CSC), hub scores over out-edges (CSR). A natural consumer of the
//! multi-representation graph container.

use essentials_core::prelude::*;

use crate::pagerank::{take_zeroed_f64, ResidualWatchdog};

/// HITS scores.
#[derive(Debug, Clone)]
pub struct HitsResult {
    /// Hub score per vertex (L2-normalized).
    pub hub: Vec<f64>,
    /// Authority score per vertex (L2-normalized).
    pub authority: Vec<f64>,
    /// Iterations run.
    pub stats: LoopStats,
    /// L1 change of the combined score vectors at the last completed
    /// iteration — the achieved residual, reported alongside partial
    /// (iteration-capped / browned-out) results. Zero for the empty graph.
    pub final_error: f64,
}

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Convergence threshold on the L1 change of both vectors.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            tolerance: 1e-10,
            max_iterations: 100,
        }
    }
}

/// Runs HITS. Requires `with_csc`.
pub fn hits<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: HitsConfig,
) -> HitsResult {
    match try_hits(policy, ctx, g, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`hits`]: the context's run budget is checked at iteration
/// boundaries, and the shared power-iteration watchdog turns a non-finite
/// or persistently rising residual into [`ExecError::Diverged`].
pub fn try_hits<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: HitsConfig,
) -> Result<HitsResult, ExecError> {
    let n = g.get_num_vertices();
    if n == 0 {
        return Ok(HitsResult {
            hub: Vec::new(),
            authority: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        });
    }
    let init = (vec![1.0f64; n], vec![1.0f64; n]);
    let mut next_auth = take_zeroed_f64(ctx, n);
    let mut next_hub = take_zeroed_f64(ctx, n);
    let mut watchdog = ResidualWatchdog::new();
    let mut final_error = f64::INFINITY;
    let result = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(init, |iter, (hub, auth), progress| {
            // Both score vectors are recomputed in full each iteration,
            // into pooled double-buffers that swap with the state.
            progress.report_work(n);
            // auth'[v] = Σ hub[u] over in-edges (u → v)
            let h = &*hub;
            fill_indexed_into(policy, ctx, &mut next_auth, |v| {
                g.in_neighbors(v as VertexId)
                    .iter()
                    .map(|&u| h[u as usize])
                    .sum()
            });
            l2_normalize(&mut next_auth);
            // hub'[u] = Σ auth'[v] over out-edges (u → v)
            let na = &next_auth;
            fill_indexed_into(policy, ctx, &mut next_hub, |u| {
                g.out_neighbors(u as VertexId)
                    .iter()
                    .map(|&v| na[v as usize])
                    .sum()
            });
            l2_normalize(&mut next_hub);
            let err: f64 = hub
                .iter()
                .zip(&next_hub)
                .chain(auth.iter().zip(&next_auth))
                .map(|(a, b)| (a - b).abs())
                .sum();
            std::mem::swap(hub, &mut next_hub);
            std::mem::swap(auth, &mut next_auth);
            final_error = err;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        });
    ctx.recycle_f64_buffer(next_auth);
    ctx.recycle_f64_buffer(next_hub);
    let ((hub, authority), stats) = result?;
    Ok(HitsResult {
        hub,
        authority,
        stats,
        final_error,
    })
}

/// HITS through the propagation-blocked gather: both gathers stream fixed
/// destination-binned layouts (authorities scatter hub scores along
/// out-edges, hubs scatter authority scores along in-edges) instead of
/// random-reading the score vectors per edge. Per-destination accumulation
/// order matches the adjacency scans term for term, so results agree with
/// [`hits`] to the last few ulps and are bit-identical across thread
/// counts. Requires `with_csc`.
pub fn hits_blocked<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: HitsConfig,
    bins: BlockedConfig,
) -> HitsResult {
    match try_hits_blocked(policy, ctx, g, cfg, bins) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`hits_blocked`] — same budget/watchdog contract as
/// [`try_hits`].
pub fn try_hits_blocked<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: HitsConfig,
    bins: BlockedConfig,
) -> Result<HitsResult, ExecError> {
    let n = g.get_num_vertices();
    if n == 0 {
        return Ok(HitsResult {
            hub: Vec::new(),
            authority: Vec::new(),
            stats: LoopStats::default(),
            final_error: 0.0,
        });
    }
    let init = (vec![1.0f64; n], vec![1.0f64; n]);
    let mut next_auth = take_zeroed_f64(ctx, n);
    let mut next_hub = take_zeroed_f64(ctx, n);
    // auth'[v] sums hub over in-edges (u → v): scatter hub along the CSR.
    let mut auth_gather = BlockedGather::over_out_edges(policy, ctx, g, bins);
    // hub'[u] sums auth' over out-edges (u → v): scatter auth' along the CSC.
    let mut hub_gather = BlockedGather::over_in_edges(policy, ctx, g, bins);
    let mut watchdog = ResidualWatchdog::new();
    let mut final_error = f64::INFINITY;
    let result = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(init, |iter, (hub, auth), progress| {
            progress.report_work(n);
            let h = &*hub;
            auth_gather.gather(policy, ctx, |u| h[u], |_, acc| acc, &mut next_auth);
            l2_normalize(&mut next_auth);
            let na = &next_auth;
            hub_gather.gather(policy, ctx, |v| na[v], |_, acc| acc, &mut next_hub);
            l2_normalize(&mut next_hub);
            let err: f64 = hub
                .iter()
                .zip(&next_hub)
                .chain(auth.iter().zip(&next_auth))
                .map(|(a, b)| (a - b).abs())
                .sum();
            std::mem::swap(hub, &mut next_hub);
            std::mem::swap(auth, &mut next_auth);
            final_error = err;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        });
    auth_gather.finish(ctx);
    hub_gather.finish(ctx);
    ctx.recycle_f64_buffer(next_auth);
    ctx.recycle_f64_buffer(next_hub);
    let ((hub, authority), stats) = result?;
    Ok(HitsResult {
        hub,
        authority,
        stats,
        final_error,
    })
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    #[test]
    fn star_hub_and_authorities() {
        // 0 points at 1..=5: vertex 0 is the pure hub, 1..=5 pure
        // authorities.
        let mut coo = Coo::<()>::new(6);
        for v in 1..=5 {
            coo.push(0, v, ());
        }
        let g = Graph::from_coo(&coo).with_csc();
        let ctx = Context::sequential();
        let r = hits(execution::seq, &ctx, &g, HitsConfig::default());
        assert!((r.hub[0] - 1.0).abs() < 1e-6);
        assert!(r.hub[1].abs() < 1e-6);
        assert!(r.authority[0].abs() < 1e-6);
        for v in 1..=5 {
            assert!((r.authority[v] - (1.0f64 / 5.0f64.sqrt())).abs() < 1e-6);
        }
    }

    #[test]
    fn policy_equivalence() {
        let g = Graph::from_coo(&gen::gnm(150, 800, 4)).with_csc();
        let ctx = Context::new(4);
        let a = hits(execution::seq, &ctx, &g, HitsConfig::default());
        let b = hits(execution::par, &ctx, &g, HitsConfig::default());
        for (x, y) in a.hub.iter().zip(&b.hub) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn blocked_hits_matches_plain_hits() {
        let g = Graph::from_coo(&gen::rmat(8, 6, gen::RmatParams::default(), 7)).with_csc();
        let ctx = Context::new(4);
        let cfg = HitsConfig {
            tolerance: 0.0,
            max_iterations: 20,
        };
        let plain = hits(execution::par, &ctx, &g, cfg);
        let bins = BlockedConfig { bin_bits: 5 };
        let blocked = hits_blocked(execution::par, &ctx, &g, cfg, bins);
        for (a, b) in plain
            .hub
            .iter()
            .zip(&blocked.hub)
            .chain(plain.authority.iter().zip(&blocked.authority))
        {
            assert!((a - b).abs() <= 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn blocked_hits_is_bit_identical_across_thread_counts() {
        let g = Graph::from_coo(&gen::gnm(500, 3000, 13)).with_csc();
        let cfg = HitsConfig {
            tolerance: 0.0,
            max_iterations: 10,
        };
        let bins = BlockedConfig { bin_bits: 6 };
        let mut reference: Option<HitsResult> = None;
        for threads in [1, 2, 8] {
            let ctx = Context::new(threads);
            let r = hits_blocked(execution::par, &ctx, &g, cfg, bins);
            match &reference {
                None => reference = Some(r),
                Some(want) => {
                    assert_eq!(r.hub, want.hub, "threads={threads}");
                    assert_eq!(r.authority, want.authority, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn final_error_reports_the_achieved_residual() {
        let g = Graph::from_coo(&gen::gnm(150, 800, 4)).with_csc();
        let ctx = Context::new(2);
        // A tightly capped partial run reports how far it got...
        let short = hits(
            execution::par,
            &ctx,
            &g,
            HitsConfig {
                tolerance: 0.0,
                max_iterations: 2,
            },
        );
        assert!(short.final_error.is_finite());
        assert!(short.final_error > 0.0);
        // ...and a much longer run achieves a strictly smaller residual.
        let long = hits(
            execution::par,
            &ctx,
            &g,
            HitsConfig {
                tolerance: 1e-12,
                max_iterations: 80,
            },
        );
        assert!(long.final_error < short.final_error);
    }

    #[test]
    fn scores_are_normalized() {
        let g = Graph::from_coo(&gen::rmat(7, 4, gen::RmatParams::default(), 2)).with_csc();
        let ctx = Context::new(2);
        let r = hits(execution::par, &ctx, &g, HitsConfig::default());
        let h: f64 = r.hub.iter().map(|x| x * x).sum();
        let a: f64 = r.authority.iter().map(|x| x * x).sum();
        assert!((h - 1.0).abs() < 1e-9 || h == 0.0);
        assert!((a - 1.0).abs() < 1e-9 || a == 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::<()>::from_coo(&Coo::new(0)).with_csc();
        let ctx = Context::sequential();
        let r = hits(execution::seq, &ctx, &g, HitsConfig::default());
        assert!(r.hub.is_empty());
    }

    #[test]
    fn frontier_trace_has_one_entry_per_iteration() {
        let g = Graph::from_coo(&gen::gnm(150, 800, 4)).with_csc();
        let ctx = Context::new(2);
        let r = hits(execution::par, &ctx, &g, HitsConfig::default());
        assert!(r.stats.iterations > 0);
        assert_eq!(r.stats.frontier_trace.len(), r.stats.iterations);
        assert!(r.stats.frontier_trace.iter().all(|&w| w == 150));
    }
}
