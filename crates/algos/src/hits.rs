//! HITS (Kleinberg's hubs & authorities) — power iteration using both
//! traversal directions at once: authority scores gather over in-edges
//! (CSC), hub scores over out-edges (CSR). A natural consumer of the
//! multi-representation graph container.

use essentials_core::prelude::*;

use crate::pagerank::ResidualWatchdog;

/// HITS scores.
#[derive(Debug, Clone)]
pub struct HitsResult {
    /// Hub score per vertex (L2-normalized).
    pub hub: Vec<f64>,
    /// Authority score per vertex (L2-normalized).
    pub authority: Vec<f64>,
    /// Iterations run.
    pub stats: LoopStats,
}

/// Configuration for the power iteration.
#[derive(Debug, Clone, Copy)]
pub struct HitsConfig {
    /// Convergence threshold on the L1 change of both vectors.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            tolerance: 1e-10,
            max_iterations: 100,
        }
    }
}

/// Runs HITS. Requires `with_csc`.
pub fn hits<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: HitsConfig,
) -> HitsResult {
    match try_hits(policy, ctx, g, cfg) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`hits`]: the context's run budget is checked at iteration
/// boundaries, and the shared power-iteration watchdog turns a non-finite
/// or persistently rising residual into [`ExecError::Diverged`].
pub fn try_hits<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    cfg: HitsConfig,
) -> Result<HitsResult, ExecError> {
    let n = g.get_num_vertices();
    if n == 0 {
        return Ok(HitsResult {
            hub: Vec::new(),
            authority: Vec::new(),
            stats: LoopStats::default(),
        });
    }
    let init = (vec![1.0f64; n], vec![1.0f64; n]);
    let mut watchdog = ResidualWatchdog::new();
    let ((hub, authority), stats) = Enactor::for_ctx(ctx)
        .max_iterations(cfg.max_iterations)
        .try_run_until(init, |iter, (hub, auth), progress| {
            // Both score vectors are recomputed in full each iteration.
            progress.report_work(n);
            // auth'[v] = Σ hub[u] over in-edges (u → v)
            let new_auth: Vec<f64> = fill_indexed(policy, ctx, n, |v| {
                g.in_neighbors(v as VertexId)
                    .iter()
                    .map(|&u| hub[u as usize])
                    .sum()
            });
            let new_auth = l2_normalize(new_auth);
            // hub'[u] = Σ auth'[v] over out-edges (u → v)
            let new_hub: Vec<f64> = fill_indexed(policy, ctx, n, |u| {
                g.out_neighbors(u as VertexId)
                    .iter()
                    .map(|&v| new_auth[v as usize])
                    .sum()
            });
            let new_hub = l2_normalize(new_hub);
            let err: f64 = hub
                .iter()
                .zip(&new_hub)
                .chain(auth.iter().zip(&new_auth))
                .map(|(a, b)| (a - b).abs())
                .sum();
            *hub = new_hub;
            *auth = new_auth;
            watchdog.check(iter, err)?;
            Ok(err < cfg.tolerance)
        })?;
    Ok(HitsResult {
        hub,
        authority,
        stats,
    })
}

fn l2_normalize(mut v: Vec<f64>) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    #[test]
    fn star_hub_and_authorities() {
        // 0 points at 1..=5: vertex 0 is the pure hub, 1..=5 pure
        // authorities.
        let mut coo = Coo::<()>::new(6);
        for v in 1..=5 {
            coo.push(0, v, ());
        }
        let g = Graph::from_coo(&coo).with_csc();
        let ctx = Context::sequential();
        let r = hits(execution::seq, &ctx, &g, HitsConfig::default());
        assert!((r.hub[0] - 1.0).abs() < 1e-6);
        assert!(r.hub[1].abs() < 1e-6);
        assert!(r.authority[0].abs() < 1e-6);
        for v in 1..=5 {
            assert!((r.authority[v] - (1.0f64 / 5.0f64.sqrt())).abs() < 1e-6);
        }
    }

    #[test]
    fn policy_equivalence() {
        let g = Graph::from_coo(&gen::gnm(150, 800, 4)).with_csc();
        let ctx = Context::new(4);
        let a = hits(execution::seq, &ctx, &g, HitsConfig::default());
        let b = hits(execution::par, &ctx, &g, HitsConfig::default());
        for (x, y) in a.hub.iter().zip(&b.hub) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn scores_are_normalized() {
        let g = Graph::from_coo(&gen::rmat(7, 4, gen::RmatParams::default(), 2)).with_csc();
        let ctx = Context::new(2);
        let r = hits(execution::par, &ctx, &g, HitsConfig::default());
        let h: f64 = r.hub.iter().map(|x| x * x).sum();
        let a: f64 = r.authority.iter().map(|x| x * x).sum();
        assert!((h - 1.0).abs() < 1e-9 || h == 0.0);
        assert!((a - 1.0).abs() < 1e-9 || a == 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::<()>::from_coo(&Coo::new(0)).with_csc();
        let ctx = Context::sequential();
        let r = hits(execution::seq, &ctx, &g, HitsConfig::default());
        assert!(r.hub.is_empty());
    }

    #[test]
    fn frontier_trace_has_one_entry_per_iteration() {
        let g = Graph::from_coo(&gen::gnm(150, 800, 4)).with_csc();
        let ctx = Context::new(2);
        let r = hits(execution::par, &ctx, &g, HitsConfig::default());
        assert!(r.stats.iterations > 0);
        assert_eq!(r.stats.frontier_trace.len(), r.stats.iterations);
        assert!(r.stats.frontier_trace.iter().all(|&w| w == 150));
    }
}
