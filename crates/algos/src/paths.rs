//! Predecessor tracking and path reconstruction.
//!
//! Traversal results often need the *path*, not just the metric. These
//! variants record a predecessor per vertex during the same policy-parallel
//! expansion (ties broken by whichever relaxation lands last — any
//! recorded predecessor is guaranteed consistent with the final metric),
//! plus utilities to extract and verify explicit paths.

use essentials_core::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// SSSP with predecessors: distances plus a shortest-path tree.
#[derive(Debug, Clone)]
pub struct SsspTree {
    /// Shortest distances (as in [`crate::sssp::SsspResult`]).
    pub dist: Vec<f32>,
    /// `parent[v]` = predecessor of v on a shortest path;
    /// [`INVALID_VERTEX`] for the source and unreachable vertices.
    pub parent: Vec<VertexId>,
}

/// Listing-4 SSSP augmented with predecessor recording. The (distance,
/// parent) pair is packed into one atomic u64 so the parent always matches
/// the distance it was recorded with (no torn updates under concurrency).
pub fn sssp_with_parents<P: ExecutionPolicy>(
    policy: P,
    ctx: &Context,
    g: &Graph<f32>,
    source: VertexId,
) -> SsspTree {
    let n = g.get_num_vertices();
    // High 32 bits: distance bits (non-negative f32 order-preserving);
    // low 32 bits: parent id. Smaller value <=> smaller distance.
    let pack = |d: f32, p: VertexId| -> u64 { ((d.to_bits() as u64) << 32) | p as u64 };
    let state: Vec<AtomicU64> = (0..n)
        .map(|i| {
            AtomicU64::new(if i == source as usize {
                pack(0.0, INVALID_VERTEX)
            } else {
                pack(f32::INFINITY, INVALID_VERTEX)
            })
        })
        .collect();
    let dist_of = |s: u64| f32::from_bits((s >> 32) as u32);

    let (_, _stats) = Enactor::for_ctx(ctx).run(SparseFrontier::single(source), |_, f| {
        let out = neighbors_expand(policy, ctx, g, &f, |src, dst, _e, w| {
            let new_d = dist_of(state[src as usize].load(Ordering::Acquire)) + w;
            let candidate = pack(new_d, src);
            // fetch_min on the packed value: distance dominates the order;
            // among equal distances the smaller parent id wins (harmless —
            // still a valid shortest-path predecessor).
            state[dst as usize].fetch_min(candidate, Ordering::AcqRel) > candidate
        });
        uniquify_with_bitmap(policy, ctx, &out, n)
    });

    let mut dist = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for (v, s) in state.into_iter().enumerate() {
        let s = s.into_inner();
        let d = dist_of(s);
        dist.push(d);
        // The source and unreachable vertices have no predecessor; every
        // other vertex (including distance-0 ones reached over zero-weight
        // edges) keeps the recorded parent.
        parent.push(if v == source as usize || d.is_infinite() {
            INVALID_VERTEX
        } else {
            (s & 0xFFFF_FFFF) as VertexId
        });
    }
    SsspTree { dist, parent }
}

/// BFS with parent recording (a BFS tree).
pub fn bfs_with_parents<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    source: VertexId,
) -> (Vec<u32>, Vec<VertexId>) {
    let n = g.get_num_vertices();
    let level: Vec<AtomicU32> = (0..n)
        .map(|i| {
            AtomicU32::new(if i == source as usize {
                0
            } else {
                crate::bfs::UNVISITED
            })
        })
        .collect();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INVALID_VERTEX)).collect();
    let (_, _stats) = Enactor::for_ctx(ctx).run(SparseFrontier::single(source), |iter, f| {
        let next = iter as u32 + 1;
        neighbors_expand(policy, ctx, g, &f, |src, dst, _e, _w| {
            if level[dst as usize]
                .compare_exchange(
                    crate::bfs::UNVISITED,
                    next,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                parent[dst as usize].store(src, Ordering::Release);
                true
            } else {
                false
            }
        })
    });
    (
        level.into_iter().map(AtomicU32::into_inner).collect(),
        parent.into_iter().map(AtomicU32::into_inner).collect(),
    )
}

/// Walks parents from `target` back to the root. Returns the path
/// root→target, or `None` if `target` has no recorded path.
pub fn extract_path(
    parent: &[VertexId],
    source: VertexId,
    target: VertexId,
) -> Option<Vec<VertexId>> {
    if target == source {
        return Some(vec![source]);
    }
    let mut path = vec![target];
    let mut cur = target;
    for _ in 0..=parent.len() {
        let p = parent[cur as usize];
        if p == INVALID_VERTEX {
            return None;
        }
        path.push(p);
        if p == source {
            path.reverse();
            return Some(path);
        }
        cur = p;
    }
    None // cycle — invalid parent array
}

/// Verifies a shortest-path tree: every recorded parent edge exists, and
/// walking the path from the source reproduces the claimed distance.
pub fn verify_sssp_tree(g: &Graph<f32>, source: VertexId, tree: &SsspTree, eps: f32) -> bool {
    for v in g.vertices() {
        let d = tree.dist[v as usize];
        if v == source || d.is_infinite() {
            continue;
        }
        let Some(path) = extract_path(&tree.parent, source, v) else {
            return false;
        };
        let mut walked = 0.0f32;
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            // Find the lightest a→b edge (parallel edges possible).
            let mut best = f32::INFINITY;
            for e in g.get_edges(a) {
                if g.get_dest_vertex(e) == b {
                    best = best.min(g.get_edge_weight(e));
                }
            }
            if best.is_infinite() {
                return false; // parent edge doesn't exist
            }
            walked += best;
        }
        if (walked - d).abs() > eps * (1.0 + d.abs()) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_gen as gen;

    #[test]
    fn sssp_tree_on_diamond() {
        let g = Graph::from_coo(&Coo::from_edges(
            4,
            [(0, 1, 1.0), (0, 2, 4.0), (1, 3, 2.0), (2, 3, 1.0)],
        ));
        let ctx = Context::new(2);
        let tree = sssp_with_parents(execution::par, &ctx, &g, 0);
        assert_eq!(tree.dist, vec![0.0, 1.0, 4.0, 3.0]);
        assert_eq!(extract_path(&tree.parent, 0, 3), Some(vec![0, 1, 3]));
        assert!(verify_sssp_tree(&g, 0, &tree, 1e-6));
    }

    #[test]
    fn tree_distances_match_plain_sssp_on_random_graphs() {
        let ctx = Context::new(4);
        for seed in [3, 12] {
            let coo = gen::gnm(200, 1400, seed);
            let g = Graph::from_coo(&gen::uniform_weights(&coo, 0.1, 2.0, seed));
            let tree = sssp_with_parents(execution::par, &ctx, &g, 0);
            let plain = crate::sssp::sssp(execution::par, &ctx, &g, 0);
            assert_eq!(tree.dist, plain.dist, "seed {seed}");
            assert!(verify_sssp_tree(&g, 0, &tree, 1e-4), "seed {seed}");
        }
    }

    #[test]
    fn bfs_parents_form_valid_tree() {
        let g = Graph::<()>::from_coo(&gen::grid2d(10, 10));
        let ctx = Context::new(2);
        let (level, parent) = bfs_with_parents(execution::par, &ctx, &g, 0);
        assert!(crate::bfs::verify_bfs(&g, 0, &level));
        for v in 1..level.len() as VertexId {
            if level[v as usize] == crate::bfs::UNVISITED {
                continue;
            }
            let p = parent[v as usize];
            // Parent is one level up and adjacent.
            assert_eq!(level[p as usize] + 1, level[v as usize]);
            assert!(g.out_neighbors(p).contains(&v));
            // Path has exactly level+1 vertices.
            let path = extract_path(&parent, 0, v).unwrap();
            assert_eq!(path.len() as u32, level[v as usize] + 1);
        }
    }

    #[test]
    fn unreachable_targets_have_no_path() {
        let g = Graph::from_coo(&Coo::from_edges(3, [(0, 1, 1.0f32)]));
        let ctx = Context::sequential();
        let tree = sssp_with_parents(execution::seq, &ctx, &g, 0);
        assert!(extract_path(&tree.parent, 0, 2).is_none());
        assert!(tree.dist[2].is_infinite());
        assert!(verify_sssp_tree(&g, 0, &tree, 1e-6));
    }

    #[test]
    fn extract_path_detects_cycles() {
        // Corrupt parent array: 1 -> 2 -> 1.
        let parent = vec![INVALID_VERTEX, 2, 1];
        assert_eq!(extract_path(&parent, 0, 1), None);
    }

    #[test]
    fn source_path_is_trivial() {
        let parent = vec![INVALID_VERTEX];
        assert_eq!(extract_path(&parent, 0, 0), Some(vec![0]));
    }
}
