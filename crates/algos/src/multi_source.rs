//! Multi-source batched BFS — one graph pass amortized over up to 64
//! sources.
//!
//! The serving workload (many concurrent reachability/level probes against
//! one immutable graph) rarely needs *one* BFS; it needs *many*. Running k
//! independent traversals costs k full passes over the same adjacency
//! structure. This module instead assigns each source a bit in a `u64`
//! **mask word per vertex** and advances all sources in lock-step BSP
//! iterations: iteration d claims, for every source s, exactly the vertices
//! at distance d from s. One edge inspection relaxes up to 64 traversals at
//! once — the word-parallel trick of the dense-frontier kernels
//! (DESIGN.md §7) applied across *queries* instead of across *vertices*.
//!
//! Determinism: bit s of vertex v is claimed by exactly one
//! `fetch_or` winner, and the iteration at which the claim can happen is
//! fixed by the BSP structure (it *is* the BFS distance), so the level
//! table is bit-identical to k independent [`crate::bfs::bfs`] runs at any
//! thread count (`tests/multi_source.rs` proves it property-style).
//!
//! All working memory — visited/frontier/next mask words, the level table,
//! and the two active-vertex bitmaps — checks out of the context's scratch
//! pools, so a warm serving engine re-runs batches with zero steady-state
//! allocations (`tests/zero_alloc.rs`).

use essentials_core::obs::AbortEvent;
use essentials_core::prelude::*;
use essentials_parallel::atomics::{as_atomic_u32, as_atomic_u64, Counter};
use essentials_parallel::exec::panic_payload_string;
use essentials_parallel::{ChunkAction, ChunkHooks};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;

pub use crate::bfs::UNVISITED;

/// Maximum sources per batch: one bit per source in the per-vertex mask
/// word.
pub const MAX_BATCH: usize = 64;

/// Words processed per scheduling chunk when sweeping the active bitmap.
const WORD_GRAIN: usize = 4;

/// Output of a batched traversal: a row-major level table plus run
/// metadata. Deliberately `Vec`-light (no per-iteration traces) so the
/// serving path stays allocation-free after warm-up.
#[derive(Debug, Clone)]
pub struct MsBfsResult {
    /// `levels[v * batch + s]` = hop distance of vertex `v` from source
    /// `s`, [`UNVISITED`] if unreachable. Drawn from the context's pooled
    /// `u32` buffers; return it with [`MsBfsResult::recycle`] to keep the
    /// serving loop allocation-free.
    pub levels: Vec<u32>,
    /// Number of sources in the batch (the row stride of `levels`).
    pub batch: usize,
    /// BSP iterations executed (the maximum BFS depth reached plus one
    /// frontier-emptying check).
    pub iterations: usize,
    /// Edges inspected across the whole batch (each inspection serves up
    /// to `batch` sources — the amortization this kernel exists for).
    pub edges_inspected: usize,
}

impl MsBfsResult {
    /// Level of vertex `v` from source index `s`.
    #[inline]
    pub fn level(&self, v: VertexId, s: usize) -> u32 {
        self.levels[v as usize * self.batch + s]
    }

    /// The full level vector of source index `s` — the exact shape
    /// [`crate::bfs::BfsResult::level`] has, for differential testing.
    pub fn source_levels(&self, s: usize) -> Vec<u32> {
        assert!(
            s < self.batch,
            "source index {s} out of batch {}",
            self.batch
        );
        self.levels
            .iter()
            .skip(s)
            .step_by(self.batch)
            .copied()
            .collect()
    }

    /// Returns the level table's storage to the context's numeric pool, so
    /// the next batched request on this scratch reuses it instead of
    /// allocating.
    pub fn recycle(self, ctx: &Context) {
        ctx.recycle_u32_buffer(self.levels);
    }
}

/// Infallible [`try_bfs_multi_source`] (panics on execution errors).
///
/// ```
/// use essentials_core::prelude::*;
/// use essentials_algos::multi_source::{bfs_multi_source, UNVISITED};
///
/// // 0 → 1 → 2, and 3 isolated.
/// let g = Graph::from_coo(&Coo::<()>::from_edges(4, [(0, 1, ()), (1, 2, ())]));
/// let r = bfs_multi_source(execution::par, &Context::new(2), &g, &[0, 1]);
/// assert_eq!(r.source_levels(0), vec![0, 1, 2, UNVISITED]);
/// assert_eq!(r.source_levels(1), vec![UNVISITED, 0, 1, UNVISITED]);
/// ```
pub fn bfs_multi_source<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    sources: &[VertexId],
) -> MsBfsResult {
    match try_bfs_multi_source(policy, ctx, g, sources) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Batched BFS from up to [`MAX_BATCH`] sources in one traversal.
///
/// Fallible like the other `try_*` algorithms: the context's [`RunBudget`]
/// is checked at iteration boundaries and (via chunk hooks) inside the
/// word sweep, fault-plan injections fire at their `(iteration, chunk)`
/// coordinates, and worker panics surface as [`ExecError::WorkerPanic`].
/// A malformed request — more than [`MAX_BATCH`] sources, or a source
/// outside the graph — is rejected up front as
/// [`ExecError::InvalidInput`], before any pooled buffer is taken. On any
/// error every pooled buffer is returned to the scratch first, so the
/// context — and the serving engine above it — stays fully reusable.
pub fn try_bfs_multi_source<P: ExecutionPolicy, W: EdgeValue>(
    policy: P,
    ctx: &Context,
    g: &Graph<W>,
    sources: &[VertexId],
) -> Result<MsBfsResult, ExecError> {
    // The policy is a type-level dispatch token (P::IS_PARALLEL below).
    let _ = policy;
    let n = g.get_num_vertices();
    let k = sources.len();
    // Validate before touching the scratch pools: a bad request is a
    // caller error, not an execution failure, and must leave every pooled
    // buffer parked so the serving engine above stays warm and reusable.
    if k > MAX_BATCH {
        return Err(ExecError::InvalidInput {
            detail: format!("batch of {k} sources exceeds the {MAX_BATCH}-lane mask width"),
        });
    }
    if let Some(&bad) = sources.iter().find(|&&s| s as usize >= n) {
        return Err(ExecError::InvalidInput {
            detail: format!("source {bad} out of range (graph has {n} vertices)"),
        });
    }
    let mut levels = ctx.take_u32_buffer();
    levels.resize(n * k, UNVISITED);
    if k == 0 || n == 0 {
        return Ok(MsBfsResult {
            levels,
            batch: k,
            iterations: 0,
            edges_inspected: 0,
        });
    }

    let mut visited = ctx.take_u64_buffer();
    visited.resize(n, 0);
    let mut frontier = ctx.take_u64_buffer();
    frontier.resize(n, 0);
    let mut next = ctx.take_u64_buffer();
    next.resize(n, 0);
    let mut active = ctx.take_dense_frontier(n);
    let mut next_active = ctx.take_dense_frontier(n);

    for (s, &src) in sources.iter().enumerate() {
        let v = src as usize;
        let bit = 1u64 << s;
        visited[v] |= bit;
        frontier[v] |= bit;
        levels[v * k + s] = 0;
        active.insert(src);
    }

    let edges = Counter::new();
    let words = n.div_ceil(64);
    let mut iterations = 0usize;
    let outcome = loop {
        if active.is_empty() {
            break Ok(());
        }
        if let Some(plan) = ctx.fault_plan() {
            plan.set_iteration(iterations);
        }
        if let Err(reason) = ctx.budget().check_iteration(iterations) {
            break Err(ExecError::Budget {
                reason,
                progress: Progress {
                    iterations,
                    work_trace: Vec::new(),
                },
            });
        }
        let depth = iterations as u32 + 1;
        let step = {
            let frontier_ref: &[u64] = &frontier;
            let visited_at = as_atomic_u64(&mut visited);
            let next_at = as_atomic_u64(&mut next);
            let levels_at = as_atomic_u32(&mut levels);
            let active_ref = &active;
            let next_active_ref = &next_active;
            let edges_ref = &edges;
            let body = move |w: usize| {
                active_ref.bits().for_each_set_in_words(w, w + 1, &mut |v| {
                    let fmask = frontier_ref[v];
                    for e in g.get_edges(v as VertexId) {
                        let dst = g.get_dest_vertex(e) as usize;
                        edges_ref.add(1);
                        // One RMW claims all still-unvisited source bits at
                        // once; the winner of each bit is unique, so every
                        // level cell is written exactly once — by the
                        // iteration that *is* its BFS distance.
                        let old = visited_at[dst].fetch_or(fmask, Ordering::AcqRel);
                        let new = fmask & !old;
                        if new != 0 {
                            next_at[dst].fetch_or(new, Ordering::Relaxed);
                            let mut bits = new;
                            while bits != 0 {
                                let s = bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                levels_at[dst * k + s].store(depth, Ordering::Relaxed);
                            }
                            next_active_ref.insert(dst as VertexId);
                        }
                    }
                });
            };
            if P::IS_PARALLEL && ctx.num_threads() > 1 {
                ctx.pool().try_parallel_for(
                    0..words,
                    Schedule::Dynamic(WORD_GRAIN),
                    ctx.chunk_hooks(),
                    body,
                )
            } else {
                serial_sweep(ctx.chunk_hooks(), words, body)
            }
        };
        if let Err(e) = step {
            break Err(e);
        }
        // Consume the spent frontier words (only active vertices hold
        // non-zero words, so this is O(|frontier|) plus the bitmap scan),
        // then rotate the double buffer and the active bitmaps.
        active
            .bits()
            .for_each_set_in_words(0, words, &mut |v| frontier[v] = 0);
        std::mem::swap(&mut frontier, &mut next);
        active.clear();
        std::mem::swap(&mut active, &mut next_active);
        iterations += 1;
    };

    ctx.recycle_u64_buffer(visited);
    ctx.recycle_u64_buffer(frontier);
    ctx.recycle_u64_buffer(next);
    ctx.recycle_dense_frontier(active);
    ctx.recycle_dense_frontier(next_active);
    match outcome {
        Ok(()) => Ok(MsBfsResult {
            levels,
            batch: k,
            iterations,
            edges_inspected: edges.get(),
        }),
        Err(e) => {
            ctx.recycle_u32_buffer(levels);
            if let Some(obs) = ctx.obs() {
                obs.on_abort(&AbortEvent {
                    kind: e.kind(),
                    iteration: iterations,
                });
            }
            Err(e)
        }
    }
}

/// Sequential word sweep with the same chunk-hook discipline as the pool's
/// fallible loops: budget probes and fault injections fire at chunk
/// boundaries, organic panics are captured and typed.
fn serial_sweep(
    hooks: ChunkHooks<'_>,
    words: usize,
    body: impl Fn(usize),
) -> Result<(), ExecError> {
    let mut lo = 0usize;
    let mut chunk = 0usize;
    while lo < words {
        let hi = (lo + WORD_GRAIN).min(words);
        match hooks.before_chunk(chunk) {
            ChunkAction::Run => {}
            ChunkAction::Stop(reason) => {
                return Err(ExecError::Budget {
                    reason,
                    progress: Progress::default(),
                })
            }
            ChunkAction::Panic {
                iteration,
                chunk: at,
            } => {
                return Err(ExecError::WorkerPanic {
                    payload: format!("injected fault at (iteration {iteration}, chunk {at})"),
                    chunk,
                })
            }
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            for w in lo..hi {
                body(w);
            }
        })) {
            return Err(ExecError::WorkerPanic {
                payload: panic_payload_string(&*payload),
                chunk,
            });
        }
        lo = hi;
        chunk += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{bfs, bfs_sequential};
    use essentials_gen as gen;

    #[test]
    fn batch_matches_independent_runs_on_a_tree() {
        let g = Graph::from_coo(&gen::binary_tree(63));
        let ctx = Context::new(2);
        let sources = [0u32, 1, 5, 62];
        let r = bfs_multi_source(execution::par, &ctx, &g, &sources);
        assert_eq!(r.batch, sources.len());
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(
                r.source_levels(s),
                bfs_sequential(&g, src).level,
                "source {src} diverged"
            );
        }
    }

    #[test]
    fn duplicate_sources_are_independent_lanes() {
        let g = Graph::from_coo(&gen::path(10));
        let ctx = Context::sequential();
        let r = bfs_multi_source(execution::seq, &ctx, &g, &[3, 3]);
        assert_eq!(r.source_levels(0), r.source_levels(1));
        assert_eq!(r.level(3, 0), 0);
        assert_eq!(r.level(9, 1), 6);
    }

    #[test]
    fn empty_batch_and_empty_graph() {
        let ctx = Context::sequential();
        let g = Graph::from_coo(&gen::path(4));
        let r = bfs_multi_source(execution::seq, &ctx, &g, &[]);
        assert_eq!(r.batch, 0);
        assert!(r.levels.is_empty());
        let empty = Graph::from_coo(&Coo::<()>::new(0));
        let r = bfs_multi_source(execution::seq, &ctx, &empty, &[]);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn full_width_batch_agrees_with_parallel_bfs() {
        let g = Graph::from_coo(&gen::rmat(8, 8, gen::RmatParams::default(), 7));
        let ctx = Context::new(4);
        let sources: Vec<u32> = (0..64).map(|i| (i * 3) % 256).collect();
        let r = bfs_multi_source(execution::par, &ctx, &g, &sources);
        for (s, &src) in sources.iter().enumerate() {
            assert_eq!(
                r.source_levels(s),
                bfs(execution::par, &ctx, &g, src).level,
                "lane {s} (source {src}) diverged"
            );
        }
        assert!(r.edges_inspected > 0);
    }

    #[test]
    fn invalid_inputs_are_typed_errors_and_leave_scratch_parked() {
        let g = Graph::from_coo(&gen::path(4));
        let ctx = Context::sequential();
        let err = try_bfs_multi_source(execution::seq, &ctx, &g, &[9])
            .expect_err("out-of-range source must be rejected");
        assert_eq!(err.kind(), "invalid-input");
        let too_many = vec![0u32; MAX_BATCH + 1];
        let err = try_bfs_multi_source(execution::seq, &ctx, &g, &too_many)
            .expect_err("65-source batch must be rejected");
        assert_eq!(err.kind(), "invalid-input");
        // Rejection happened before any buffer was taken, so the context
        // still serves exact answers.
        let r = bfs_multi_source(execution::seq, &ctx, &g, &[0]);
        assert_eq!(r.source_levels(0), bfs_sequential(&g, 0).level);
    }

    #[test]
    fn budget_error_leaves_context_reusable() {
        let g = Graph::from_coo(&gen::grid2d(40, 40));
        let base = Context::new(2);
        // The clone shares the pool and the scratch slot with `base`.
        let capped = base
            .clone()
            .with_budget(RunBudget::unlimited().with_max_iterations(2));
        let err = try_bfs_multi_source(execution::par, &capped, &g, &[0, 1599])
            .expect_err("iteration cap must fire on a 78-level grid");
        assert_eq!(err.kind(), "iteration-cap");
        // Same pool, same scratch, fresh budget: bit-identical to oracle.
        let r = bfs_multi_source(execution::par, &base, &g, &[0]);
        assert_eq!(r.source_levels(0), bfs_sequential(&g, 0).level);
    }
}
