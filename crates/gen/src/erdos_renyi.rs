//! Erdős–Rényi G(n, m): m edges sampled uniformly from all ordered pairs.

use essentials_graph::{Coo, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `m` directed edges uniformly at random (self-loops excluded,
/// duplicates possible — normalize with the builder if needed).
pub fn gnm(n: usize, m: usize, seed: u64) -> Coo<()> {
    assert!(n >= 2 || m == 0, "need at least two vertices to draw edges");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    for _ in 0..m {
        let s = rng.gen_range(0..n) as VertexId;
        let mut d = rng.gen_range(0..n - 1) as VertexId;
        if d >= s {
            d += 1; // skip the diagonal: uniform over the n-1 non-loop targets
        }
        coo.push(s, d, ());
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_without_self_loops() {
        let g = gnm(100, 1000, 3);
        assert_eq!(g.num_edges(), 1000);
        assert!(g.iter().all(|(s, d, _)| s != d));
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(50, 200, 9), gnm(50, 200, 9));
        assert_ne!(gnm(50, 200, 9), gnm(50, 200, 10));
    }

    #[test]
    fn zero_edges_ok() {
        assert_eq!(gnm(1, 0, 0).num_edges(), 0);
    }

    #[test]
    fn endpoints_roughly_uniform() {
        let g = gnm(10, 10_000, 11);
        let mut counts = [0usize; 10];
        for (s, _, _) in g.iter() {
            counts[s as usize] += 1;
        }
        // Each vertex expects 1000 sources; allow generous slack.
        assert!(counts.iter().all(|&c| c > 700 && c < 1300), "{counts:?}");
    }
}
