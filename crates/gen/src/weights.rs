//! Deterministic weight assignment for unweighted generator output.

use essentials_graph::{Coo, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gives every edge weight 1.0 (turns hop counts into distances).
pub fn unit_weights(coo: &Coo<()>) -> Coo<f32> {
    remap(coo, |_, _, _| 1.0)
}

/// Uniform random weights in `[lo, hi)`, deterministic in `seed`. Symmetric
/// edge pairs do **not** automatically receive equal weights; experiments on
/// undirected weighted graphs should derive the weight from the endpoints
/// instead ([`hash_weights`]).
pub fn uniform_weights(coo: &Coo<()>, lo: f32, hi: f32, seed: u64) -> Coo<f32> {
    assert!(lo < hi && lo >= 0.0, "need 0 <= lo < hi for shortest paths");
    let mut rng = StdRng::seed_from_u64(seed);
    remap(coo, move |_, _, _| lo + (hi - lo) * rng.gen::<f32>())
}

/// Endpoint-hashed weights in `[lo, hi)`: `w(u,v) = w(v,u)`, deterministic,
/// no RNG state — safe for symmetrized graphs.
pub fn hash_weights(coo: &Coo<()>, lo: f32, hi: f32, seed: u64) -> Coo<f32> {
    assert!(lo < hi && lo >= 0.0, "need 0 <= lo < hi for shortest paths");
    remap(coo, move |s, d, _| {
        let (a, b) = if s <= d { (s, d) } else { (d, s) };
        // SplitMix64-style scramble of the unordered pair + seed.
        let mut x = (a as u64) << 32 | b as u64;
        x ^= seed;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        // unit in [0,1) from the top 24 bits (exact in f32).
        let unit = (x >> 40) as f32 / (1u64 << 24) as f32;
        lo + (hi - lo) * unit
    })
}

fn remap<F: FnMut(VertexId, VertexId, ()) -> f32>(coo: &Coo<()>, mut f: F) -> Coo<f32> {
    let mut out = Coo::new(coo.num_vertices());
    for (s, d, w) in coo.iter() {
        out.push(s, d, f(s, d, w));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::cycle;

    #[test]
    fn unit_weights_are_all_one() {
        let w = unit_weights(&cycle(5));
        assert!(w.vals().iter().all(|&x| x == 1.0));
        assert_eq!(w.num_edges(), 5);
    }

    #[test]
    fn uniform_weights_in_range_and_deterministic() {
        let g = cycle(100);
        let a = uniform_weights(&g, 1.0, 5.0, 9);
        assert!(a.vals().iter().all(|&x| (1.0..5.0).contains(&x)));
        assert_eq!(a, uniform_weights(&g, 1.0, 5.0, 9));
        assert_ne!(a, uniform_weights(&g, 1.0, 5.0, 10));
    }

    #[test]
    fn hash_weights_symmetric_in_endpoints() {
        let mut coo = essentials_graph::Coo::<()>::new(4);
        coo.push(1, 2, ());
        coo.push(2, 1, ());
        let w = hash_weights(&coo, 0.5, 2.0, 3);
        assert_eq!(w.vals()[0], w.vals()[1]);
        assert!((0.5..2.0).contains(&w.vals()[0]));
    }
}
