//! Recursive-MATrix (R-MAT) / Kronecker generator — the Graph500 workload.
//!
//! Each edge picks its endpoints by descending a 2×2 probability quadrant
//! `scale` times. With the classic `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`
//! this yields the skewed, power-law-ish degree distribution that stresses
//! load balancing (experiment E5) and makes BFS develop the dense middle
//! phase that direction-optimizing traversal exploits (E3).

use essentials_graph::{Coo, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities of the recursive descent. Must sum to ~1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (both halves low).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
    /// Per-level multiplicative noise on the quadrant probabilities,
    /// breaking up the exact-Kronecker degree staircase (0 disables).
    pub noise: f64,
}

impl Default for RmatParams {
    /// Graph500 parameters.
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            noise: 0.1,
        }
    }
}

/// Generates `edge_factor * 2^scale` edges over `2^scale` vertices.
///
/// Self-loops and duplicates are possible, as in Graph500; normalize with
/// [`essentials_graph::GraphBuilder`] when an experiment needs a simple
/// graph.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Coo<()> {
    assert!(scale < 32, "scale must fit VertexId");
    let total = params.a + params.b + params.c + params.d;
    assert!(
        (total - 1.0).abs() < 1e-6,
        "RMAT quadrant probabilities must sum to 1 (got {total})"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    for _ in 0..m {
        let (mut lo_s, mut lo_d) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            // Optionally perturb quadrant probabilities per level.
            let jitter = |p: f64, rng: &mut StdRng| {
                if params.noise > 0.0 {
                    p * (1.0 - params.noise + 2.0 * params.noise * rng.gen::<f64>())
                } else {
                    p
                }
            };
            let a = jitter(params.a, &mut rng);
            let b = jitter(params.b, &mut rng);
            let c = jitter(params.c, &mut rng);
            let d = jitter(params.d, &mut rng);
            let r = rng.gen::<f64>() * (a + b + c + d);
            if r < a {
                // top-left: neither bit set
            } else if r < a + b {
                lo_d += half;
            } else if r < a + b + c {
                lo_s += half;
            } else {
                lo_s += half;
                lo_d += half;
            }
            half >>= 1;
        }
        coo.push(lo_s as VertexId, lo_d as VertexId, ());
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Csr;

    #[test]
    fn shape_is_as_requested() {
        let g = rmat(8, 16, RmatParams::default(), 1);
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), 16 * 256);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = rmat(7, 8, RmatParams::default(), 42);
        let b = rmat(7, 8, RmatParams::default(), 42);
        assert_eq!(a, b);
        let c = rmat(7, 8, RmatParams::default(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn default_params_produce_degree_skew() {
        let coo = rmat(10, 16, RmatParams::default(), 7);
        let csr = Csr::from_coo(&coo);
        let stats = essentials_graph::properties::degree_stats(&csr);
        // Power-law-ish: the max degree dwarfs the mean. Uniform graphs
        // have skew ≈ 2-3; RMAT at this scale is reliably > 10.
        assert!(stats.skew > 10.0, "expected skewed degrees, got {stats:?}");
    }

    #[test]
    fn uniform_quadrants_are_not_skewed() {
        let params = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            noise: 0.0,
        };
        let csr = Csr::from_coo(&rmat(10, 16, params, 7));
        let stats = essentials_graph::properties::degree_stats(&csr);
        assert!(
            stats.skew < 4.0,
            "uniform RMAT should be ER-like, got {stats:?}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(
            4,
            1,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
                noise: 0.0,
            },
            1,
        );
    }
}
