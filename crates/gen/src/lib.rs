//! `essentials-gen` — deterministic synthetic graph generators.
//!
//! The sandboxed reproduction has no access to SuiteSparse/SNAP datasets, so
//! every experiment runs on synthetic graphs chosen to span the two topology
//! regimes that drive the design-choice crossovers the paper's abstraction
//! targets:
//!
//! * **skewed, low-diameter** — [`rmat()`](rmat()) (Kronecker/Graph500-style) and
//!   [`barabasi_albert()`](barabasi_albert()) power-law graphs: the regime where pull traversal,
//!   edge-balanced scheduling, and direction optimization pay off;
//! * **uniform, high-diameter** — [`grid`] meshes and [`regular`] families:
//!   the road-network-like regime where push traversal and static
//!   scheduling win and BSP pays one barrier per long iteration;
//! * plus [`erdos_renyi`] and [`watts_strogatz()`](watts_strogatz()) in
//!   between, and [`clustered`] (caveman communities, random bipartite) for
//!   planted-structure experiments.
//!
//! All generators are seeded and reproducible: the same `(params, seed)`
//! yields the same graph on every run and platform (we rely only on
//! `rand`'s `StdRng` stability within a locked dependency set).

#![warn(missing_docs)]

pub mod barabasi_albert;
pub mod clustered;
pub mod erdos_renyi;
pub mod grid;
pub mod regular;
pub mod rmat;
pub mod watts_strogatz;
pub mod weights;

pub use barabasi_albert::barabasi_albert;
pub use clustered::{bipartite, caveman};
pub use erdos_renyi::gnm;
pub use grid::{grid2d, grid3d};
pub use regular::{binary_tree, complete, cycle, path, star};
pub use rmat::{rmat, RmatParams};
pub use watts_strogatz::watts_strogatz;
pub use weights::{hash_weights, uniform_weights, unit_weights};
