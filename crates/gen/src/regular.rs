//! Small regular families used as edge cases and oracles in tests: their
//! analytics results are known in closed form.

use essentials_graph::{Coo, VertexId};

/// Directed path `0 → 1 → … → n-1`.
pub fn path(n: usize) -> Coo<()> {
    let mut coo = Coo::new(n);
    for v in 1..n {
        coo.push((v - 1) as VertexId, v as VertexId, ());
    }
    coo
}

/// Directed cycle `0 → 1 → … → n-1 → 0`.
pub fn cycle(n: usize) -> Coo<()> {
    let mut coo = path(n);
    if n > 1 {
        coo.push((n - 1) as VertexId, 0, ());
    }
    coo
}

/// Star: hub 0 with undirected spokes to `1..n`.
pub fn star(n: usize) -> Coo<()> {
    let mut coo = Coo::new(n);
    for v in 1..n {
        coo.push(0, v as VertexId, ());
        coo.push(v as VertexId, 0, ());
    }
    coo
}

/// Complete directed graph on `n` vertices (no self-loops).
pub fn complete(n: usize) -> Coo<()> {
    let mut coo = Coo::new(n);
    for s in 0..n {
        for d in 0..n {
            if s != d {
                coo.push(s as VertexId, d as VertexId, ());
            }
        }
    }
    coo
}

/// Complete binary tree with `n` vertices, undirected edges
/// (`v ↔ 2v+1`, `v ↔ 2v+2`).
pub fn binary_tree(n: usize) -> Coo<()> {
    let mut coo = Coo::new(n);
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                coo.push(v as VertexId, child as VertexId, ());
                coo.push(child as VertexId, v as VertexId, ());
            }
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle_counts() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(path(0).num_edges(), 0);
    }

    #[test]
    fn star_hub_touches_everything() {
        let s = star(6);
        assert_eq!(s.num_edges(), 10);
        assert!(s.iter().all(|(a, b, _)| a == 0 || b == 0));
    }

    #[test]
    fn complete_graph_count() {
        assert_eq!(complete(5).num_edges(), 20);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn binary_tree_has_n_minus_1_undirected_edges() {
        assert_eq!(binary_tree(15).num_edges(), 2 * 14);
        assert_eq!(binary_tree(1).num_edges(), 0);
    }
}
