//! Lattice meshes: the high-diameter, uniform-degree regime (road-network
//! proxy). Diameter of `grid2d(k)` is `2(k-1)` — BFS/SSSP run thousands of
//! sparse iterations, the worst case for per-iteration barrier overhead and
//! the best case for push traversal (E1/E3).

use essentials_graph::{Coo, VertexId};

/// 4-connected `rows × cols` lattice with edges in both directions.
pub fn grid2d(rows: usize, cols: usize) -> Coo<()> {
    let n = rows * cols;
    let mut coo = Coo::new(n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                coo.push(id(r, c), id(r, c + 1), ());
                coo.push(id(r, c + 1), id(r, c), ());
            }
            if r + 1 < rows {
                coo.push(id(r, c), id(r + 1, c), ());
                coo.push(id(r + 1, c), id(r, c), ());
            }
        }
    }
    coo
}

/// 6-connected `x × y × z` lattice with edges in both directions.
pub fn grid3d(x: usize, y: usize, z: usize) -> Coo<()> {
    let n = x * y * z;
    let mut coo = Coo::new(n);
    let id = |i: usize, j: usize, k: usize| (i * y * z + j * z + k) as VertexId;
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                if i + 1 < x {
                    coo.push(id(i, j, k), id(i + 1, j, k), ());
                    coo.push(id(i + 1, j, k), id(i, j, k), ());
                }
                if j + 1 < y {
                    coo.push(id(i, j, k), id(i, j + 1, k), ());
                    coo.push(id(i, j + 1, k), id(i, j, k), ());
                }
                if k + 1 < z {
                    coo.push(id(i, j, k), id(i, j, k + 1), ());
                    coo.push(id(i, j, k + 1), id(i, j, k), ());
                }
            }
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::properties::is_symmetric;
    use essentials_graph::Csr;

    #[test]
    fn grid2d_edge_count() {
        // rows*(cols-1) + cols*(rows-1) undirected edges, ×2 directed.
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 4 * 2));
    }

    #[test]
    fn grid2d_is_symmetric_with_max_degree_4() {
        let csr = Csr::from_coo(&grid2d(5, 5));
        assert!(is_symmetric(&csr));
        let stats = essentials_graph::properties::degree_stats(&csr);
        assert_eq!(stats.max, 4);
        assert_eq!(stats.min, 2);
    }

    #[test]
    fn grid3d_interior_degree_is_6() {
        let csr = Csr::from_coo(&grid3d(3, 3, 3));
        // Center vertex (1,1,1) = 1*9 + 1*3 + 1 = 13.
        assert_eq!(csr.degree(13), 6);
        assert!(is_symmetric(&csr));
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid2d(1, 1).num_edges(), 0);
        assert_eq!(grid2d(1, 5).num_edges(), 8); // a path
        assert_eq!(grid3d(1, 1, 4).num_edges(), 6);
    }
}
