//! Clustered / community-structured generators: inputs where partitioning
//! heuristics have real structure to find (the regime between a mesh and a
//! uniform random graph).

use essentials_graph::{Coo, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relaxed caveman graph: `communities` cliques of `size` vertices each,
/// with every edge rewired to a uniform random endpoint with probability
/// `rewire` (0 ⇒ disjoint cliques, 1 ⇒ ER-like). Undirected (both
/// directions emitted).
pub fn caveman(communities: usize, size: usize, rewire: f64, seed: u64) -> Coo<()> {
    assert!(size >= 2, "cliques need at least two vertices");
    assert!((0.0..=1.0).contains(&rewire));
    let n = communities * size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    for c in 0..communities {
        let base = (c * size) as VertexId;
        for i in 0..size as VertexId {
            for j in (i + 1)..size as VertexId {
                let (a, mut b) = (base + i, base + j);
                if rng.gen::<f64>() < rewire {
                    // Rewire the far endpoint anywhere (avoiding a self-loop).
                    let mut t = rng.gen_range(0..n - 1) as VertexId;
                    if t >= a {
                        t += 1;
                    }
                    b = t;
                }
                coo.push(a, b, ());
                coo.push(b, a, ());
            }
        }
    }
    coo
}

/// Random bipartite graph: `left × right` vertices, `m` edges sampled
/// uniformly from the biclique, each emitted in both directions. Left
/// vertices are `0..left`, right vertices `left..left+right`. Bipartite
/// graphs are the 2-colorability edge case for the coloring algorithm and
/// the triangle-free edge case for TC.
pub fn bipartite(left: usize, right: usize, m: usize, seed: u64) -> Coo<()> {
    assert!(left > 0 && right > 0 || m == 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(left + right);
    for _ in 0..m {
        let a = rng.gen_range(0..left) as VertexId;
        let b = (left + rng.gen_range(0..right)) as VertexId;
        coo.push(a, b, ());
        coo.push(b, a, ());
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::{Csr, GraphBuilder};

    #[test]
    fn caveman_zero_rewire_is_disjoint_cliques() {
        let coo = caveman(4, 5, 0.0, 1);
        assert_eq!(coo.num_vertices(), 20);
        // 4 cliques × C(5,2) undirected edges × 2 directions.
        assert_eq!(coo.num_edges(), 4 * 10 * 2);
        // No edge crosses a community boundary.
        assert!(coo.iter().all(|(a, b, _)| a / 5 == b / 5));
    }

    #[test]
    fn caveman_rewiring_connects_communities() {
        let g = GraphBuilder::from_coo(caveman(6, 6, 0.2, 3))
            .remove_self_loops()
            .deduplicate()
            .build();
        let cross = g
            .csr()
            .to_coo()
            .iter()
            .filter(|(a, b, _)| a / 6 != b / 6)
            .count();
        assert!(cross > 0, "rewiring should create cross-community edges");
    }

    #[test]
    fn caveman_is_deterministic() {
        assert_eq!(caveman(3, 4, 0.3, 9), caveman(3, 4, 0.3, 9));
    }

    #[test]
    fn bipartite_edges_always_cross_sides() {
        let coo = bipartite(10, 15, 100, 2);
        assert_eq!(coo.num_vertices(), 25);
        assert_eq!(coo.num_edges(), 200);
        for (a, b, _) in coo.iter() {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            assert!(lo < 10 && hi >= 10, "edge within one side: {a}-{b}");
        }
    }

    #[test]
    fn bipartite_graphs_are_triangle_free_and_two_colorable() {
        let csr = Csr::from_coo(&bipartite(8, 8, 60, 5));
        // Triangle-free: any edge's endpoints share no common neighbor.
        for u in 0..16 as essentials_graph::VertexId {
            for &v in csr.neighbors(u) {
                for &w in csr.neighbors(v) {
                    assert!(!csr.has_edge(w, u) || w == u);
                }
            }
        }
    }
}
