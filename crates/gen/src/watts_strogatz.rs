//! Watts–Strogatz small-world graphs: a ring lattice with random rewiring —
//! interpolates between the mesh regime (β = 0) and the random regime
//! (β = 1), giving the partitioning experiments (E4) a locality knob.

use essentials_graph::{Coo, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ring of `n` vertices, each connected to its `k` nearest clockwise
/// neighbors (so undirected degree `2k` before rewiring); every clockwise
/// edge is rewired to a random target with probability `beta`. Both
/// directions of each (possibly rewired) edge are emitted.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Coo<()> {
    assert!(n > 2 * k, "ring needs n > 2k (n={n}, k={k})");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    for v in 0..n {
        for j in 1..=k {
            let mut target = (v + j) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform non-self target.
                let mut t = rng.gen_range(0..n - 1);
                if t >= v {
                    t += 1;
                }
                target = t;
            }
            coo.push(v as VertexId, target as VertexId, ());
            coo.push(target as VertexId, v as VertexId, ());
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Csr;

    #[test]
    fn beta_zero_is_the_exact_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 20 * 2 * 2);
        let csr = Csr::from_coo(&g);
        // Every vertex sees v±1, v±2.
        assert_eq!(csr.neighbors(0), &[1, 2, 18, 19]);
    }

    #[test]
    fn beta_one_still_has_right_edge_count_and_no_loops() {
        let g = watts_strogatz(50, 3, 1.0, 2);
        assert_eq!(g.num_edges(), 50 * 3 * 2);
        assert!(g.iter().all(|(s, d, _)| s != d));
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(30, 2, 0.3, 5), watts_strogatz(30, 2, 0.3, 5));
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_too_dense_ring() {
        watts_strogatz(4, 2, 0.0, 0);
    }
}
