//! Barabási–Albert preferential attachment: power-law degree distribution
//! grown incrementally (vs. RMAT's recursive sampling) — a second,
//! structurally different source of skew for the load-balancing experiments.

use essentials_graph::{Coo, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grows a graph to `n` vertices, each new vertex attaching `m` undirected
/// edges to existing vertices with probability proportional to degree.
/// Implementation uses the repeated-endpoint-list trick: sampling a uniform
/// entry of the flat endpoint list *is* degree-proportional sampling.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Coo<()> {
    assert!(m >= 1, "each new vertex needs at least one edge");
    assert!(n > m, "need more vertices than edges per step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    // Flat list of edge endpoints; each appearance = one unit of degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * m * n);
    // Seed clique-ish core: connect the first m+1 vertices in a ring so
    // every early vertex has nonzero degree.
    let core = m + 1;
    for v in 0..core {
        let u = ((v + 1) % core) as VertexId;
        let v = v as VertexId;
        coo.push(v, u, ());
        coo.push(u, v, ());
        endpoints.push(v);
        endpoints.push(u);
    }
    for v in core..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        // Rejection-sample m distinct targets.
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            coo.push(v as VertexId, t, ());
            coo.push(t, v as VertexId, ());
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Csr;

    #[test]
    fn edge_count_formula() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 1);
        // core ring: m+1 undirected edges; growth: (n - m - 1) * m.
        let undirected = (m + 1) + (n - m - 1) * m;
        assert_eq!(g.num_edges(), 2 * undirected);
    }

    #[test]
    fn produces_hubs() {
        let csr = Csr::from_coo(&barabasi_albert(2000, 2, 3));
        let stats = essentials_graph::properties::degree_stats(&csr);
        assert!(stats.skew > 5.0, "expected hubs, got {stats:?}");
    }

    #[test]
    fn deterministic_and_loop_free() {
        let a = barabasi_albert(100, 2, 7);
        assert_eq!(a, barabasi_albert(100, 2, 7));
        assert!(a.iter().all(|(s, d, _)| s != d));
    }
}
