//! Edge frontier: the active set as *edges* rather than vertices.
//!
//! §III-C: the frontier type "expressed as either a set of active vertices
//! or a set of active edges … allows for both edge and vertex-centric
//! programs." Each entry carries the source alongside the edge id so
//! edge-centric operators avoid the O(log n) source recovery of
//! `Csr::edge_src`.

use essentials_graph::{EdgeId, VertexId};

/// An active edge: its id plus its (cached) source endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveEdge {
    /// Source vertex of the edge.
    pub src: VertexId,
    /// Edge id in CSR order.
    pub edge: EdgeId,
}

/// Vector-backed frontier of active edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeFrontier {
    active_edges: Vec<ActiveEdge>,
}

impl EdgeFrontier {
    /// An empty edge frontier.
    pub fn new() -> Self {
        EdgeFrontier::default()
    }

    /// Builds from `(src, edge)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VertexId, EdgeId)>) -> Self {
        EdgeFrontier {
            active_edges: pairs
                .into_iter()
                .map(|(src, edge)| ActiveEdge { src, edge })
                .collect(),
        }
    }

    /// Number of active edges.
    pub fn len(&self) -> usize {
        self.active_edges.len()
    }

    /// True if no edge is active.
    pub fn is_empty(&self) -> bool {
        self.active_edges.is_empty()
    }

    /// Appends an active edge.
    pub fn add_edge(&mut self, src: VertexId, edge: EdgeId) {
        self.active_edges.push(ActiveEdge { src, edge });
    }

    /// Slice view.
    pub fn as_slice(&self) -> &[ActiveEdge] {
        &self.active_edges
    }

    /// Removes duplicate edge ids (sorts by edge id as a side effect).
    pub fn uniquify(&mut self) {
        self.active_edges.sort_unstable_by_key(|a| a.edge);
        self.active_edges.dedup_by_key(|a| a.edge);
    }

    /// The distinct source vertices of the active edges, sorted.
    pub fn sources(&self) -> Vec<VertexId> {
        let mut s: Vec<VertexId> = self.active_edges.iter().map(|a| a.src).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut f = EdgeFrontier::new();
        f.add_edge(0, 10);
        f.add_edge(0, 11);
        f.add_edge(2, 40);
        assert_eq!(f.len(), 3);
        assert_eq!(f.sources(), vec![0, 2]);
    }

    #[test]
    fn uniquify_by_edge_id() {
        let mut f = EdgeFrontier::from_pairs([(1, 5), (2, 3), (1, 5)]);
        f.uniquify();
        assert_eq!(f.len(), 2);
        assert_eq!(f.as_slice()[0].edge, 3);
    }

    #[test]
    fn empty_frontier() {
        let f = EdgeFrontier::new();
        assert!(f.is_empty());
        assert!(f.sources().is_empty());
    }
}
