//! Double-buffered frontier pair: the ping-pong allocation pattern of BSP
//! loops. Instead of allocating a fresh output frontier every iteration,
//! the loop writes into `next()`, then `swap()`s — the old input becomes
//! the new (cleared) output, reusing both allocations for the whole run.

use essentials_graph::VertexId;

use crate::sparse::SparseFrontier;

/// A current/next pair of sparse frontiers with O(1) swap.
#[derive(Debug, Default)]
pub struct DoubleBuffer {
    current: SparseFrontier,
    next: SparseFrontier,
}

impl DoubleBuffer {
    /// Starts with `seed` as the current frontier.
    pub fn seeded(seed: SparseFrontier) -> Self {
        DoubleBuffer {
            current: seed,
            next: SparseFrontier::new(),
        }
    }

    /// The active (input) frontier.
    pub fn current(&self) -> &SparseFrontier {
        &self.current
    }

    /// Queues a vertex for the next iteration.
    pub fn activate(&mut self, v: VertexId) {
        self.next.add_vertex(v);
    }

    /// Bulk-queues vertices for the next iteration.
    pub fn activate_all(&mut self, vs: impl IntoIterator<Item = VertexId>) {
        for v in vs {
            self.next.add_vertex(v);
        }
    }

    /// Ends the iteration: next becomes current; the old current is cleared
    /// and becomes the write target (its capacity is kept).
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.current, &mut self.next);
        self.next.clear();
    }

    /// Replaces the next buffer wholesale (for operators that build their
    /// own output), still recycling the old current on swap.
    pub fn set_next(&mut self, next: SparseFrontier) {
        self.next = next;
    }

    /// Convergence test on the *current* frontier.
    pub fn is_converged(&self) -> bool {
        self.current.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_reuses_capacity() {
        let mut db = DoubleBuffer::seeded(SparseFrontier::single(0));
        assert_eq!(db.current().as_slice(), &[0]);
        db.activate(1);
        db.activate(2);
        db.swap();
        assert_eq!(db.current().as_slice(), &[1, 2]);
        // Old current was cleared and is now the write target.
        db.activate(9);
        db.swap();
        assert_eq!(db.current().as_slice(), &[9]);
    }

    #[test]
    fn converges_when_nothing_is_activated() {
        let mut db = DoubleBuffer::seeded(SparseFrontier::single(5));
        assert!(!db.is_converged());
        db.swap();
        assert!(db.is_converged());
    }

    #[test]
    fn a_bfs_like_loop_with_the_buffer() {
        // Walk a path graph 0→1→2→3 using only the buffer.
        let adj = [vec![1], vec![2], vec![3], vec![]];
        let mut db = DoubleBuffer::seeded(SparseFrontier::single(0));
        let mut visited = [false, false, false, false];
        visited[0] = true;
        let mut iterations = 0;
        while !db.is_converged() {
            let activations: Vec<VertexId> = db
                .current()
                .iter()
                .flat_map(|v| adj[v as usize].iter().copied())
                .filter(|&n: &VertexId| !std::mem::replace(&mut visited[n as usize], true))
                .collect();
            db.activate_all(activations);
            db.swap();
            iterations += 1;
        }
        assert!(visited.iter().all(|&v| v));
        assert_eq!(iterations, 4);
    }

    #[test]
    fn set_next_overrides_activations() {
        let mut db = DoubleBuffer::seeded(SparseFrontier::single(0));
        db.activate(1);
        db.set_next(SparseFrontier::from_vec(vec![7, 8]));
        db.swap();
        assert_eq!(db.current().as_slice(), &[7, 8]);
    }
}
