//! Queue frontier: the asynchronous / message-passing representation.
//!
//! §III-B: *"When represented as an asynchronous queue, a frontier can
//! communicate its elements using messages"* (the paper cites the Atos
//! dynamic scheduling framework). Activating a vertex *is* sending a
//! message; consuming the queue *is* receiving. The queue is sharded per
//! worker to keep enqueue contention low, and supports both usage modes:
//!
//! * **asynchronous** — workers pop and process continuously
//!   (`essentials_parallel::run_async` drives this mode);
//! * **bulk** — a BSP loop drains everything enqueued during an iteration
//!   ([`QueueFrontier::drain`]) to form the next frontier, which lets E2
//!   compare the representations inside an otherwise identical loop.

use essentials_graph::VertexId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sharded multi-producer queue of active vertices.
#[derive(Debug)]
pub struct QueueFrontier {
    shards: Vec<Mutex<VecDeque<VertexId>>>,
    /// Advisory message count. All accesses are Relaxed: the counter carries
    /// no payload — message data is ordered by the shard mutexes, and bulk
    /// readers (`drain`, end-of-superstep `len` checks) sit behind the
    /// pool's region barriers, which already give the happens-before edge.
    len: AtomicUsize,
}

impl QueueFrontier {
    /// Creates a queue with `shards` independent lanes (one per worker).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        QueueFrontier {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Sends vertex `v` into lane `lane` (callers pass their worker id; any
    /// value is accepted and wrapped).
    pub fn push(&self, lane: usize, v: VertexId) {
        self.len.fetch_add(1, Ordering::Relaxed);
        self.shards[lane % self.shards.len()].lock().push_back(v);
    }

    /// Receives one message from `lane`, falling back to stealing from other
    /// lanes. Returns `None` only when every lane is empty at the time of
    /// the scan.
    pub fn pop(&self, lane: usize) -> Option<VertexId> {
        let k = self.shards.len();
        for i in 0..k {
            let shard = &self.shards[(lane + i) % k];
            if let Some(v) = shard.lock().pop_front() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(v);
            }
        }
        None
    }

    /// Total queued messages.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership scan across all lanes (O(len) — the uniform interface is
    /// supported, but queue frontiers are meant to be consumed, not probed).
    pub fn contains(&self, v: VertexId) -> bool {
        self.shards.iter().any(|s| s.lock().contains(&v))
    }

    /// Drains every lane into one vector (bulk mode: end-of-superstep
    /// collection of next-iteration messages).
    pub fn drain(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.len());
        for s in &self.shards {
            let mut s = s.lock();
            self.len.fetch_sub(s.len(), Ordering::Relaxed);
            out.extend(s.drain(..));
        }
        out
    }
}

impl crate::Frontier for QueueFrontier {
    fn len(&self) -> usize {
        QueueFrontier::len(self)
    }
    fn contains(&self, v: VertexId) -> bool {
        QueueFrontier::contains(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::{Schedule, ThreadPool};

    #[test]
    fn push_pop_single_lane() {
        let q = QueueFrontier::new(1);
        q.push(0, 5);
        q.push(0, 6);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(0), Some(5));
        assert_eq!(q.pop(0), Some(6));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn pop_steals_across_lanes() {
        let q = QueueFrontier::new(4);
        q.push(2, 9);
        // Popping from a different lane still finds it.
        assert_eq!(q.pop(0), Some(9));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_empties_all_lanes() {
        let q = QueueFrontier::new(3);
        for v in 0..10 {
            q.push(v as usize, v);
        }
        let mut got = q.drain();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // spins up a real thread pool; Miri runs the serial tests
    fn concurrent_producers_lose_nothing() {
        let pool = ThreadPool::new(4);
        let q = QueueFrontier::new(4);
        pool.parallel_for(0..10_000, Schedule::Dynamic(64), |i| {
            q.push(i, (i % 1000) as VertexId);
        });
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.drain().len(), 10_000);
    }

    #[test]
    fn contains_scans_lanes() {
        let q = QueueFrontier::new(2);
        q.push(0, 3);
        q.push(1, 8);
        assert!(q.contains(8));
        assert!(!q.contains(4));
    }
}
