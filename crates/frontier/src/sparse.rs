//! The sparse frontier of Listing 2: a vector of active vertex ids.
//!
//! Method names follow the paper (`size`, `get_active_vertex`,
//! `add_vertex`) alongside idiomatic accessors. Duplicates are allowed —
//! a parallel expansion may activate a vertex through several in-edges —
//! and [`SparseFrontier::uniquify`] collapses them when an algorithm needs
//! set semantics (the paper's filter/uniquify stage).

use essentials_graph::VertexId;

/// Vector-backed frontier of active vertices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseFrontier {
    active_vertices: Vec<VertexId>,
}

impl SparseFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        SparseFrontier::default()
    }

    /// An empty frontier with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        SparseFrontier {
            active_vertices: Vec::with_capacity(cap),
        }
    }

    /// Builds from a vector of ids.
    pub fn from_vec(active_vertices: Vec<VertexId>) -> Self {
        SparseFrontier { active_vertices }
    }

    /// A frontier holding a single vertex (`f.add_vertex(source)` of
    /// Listing 4).
    pub fn single(v: VertexId) -> Self {
        SparseFrontier {
            active_vertices: vec![v],
        }
    }

    /// Number of active entries, counting duplicates — the paper's `size()`.
    #[inline]
    pub fn size(&self) -> usize {
        self.active_vertices.len()
    }

    /// Same as [`SparseFrontier::size`], idiomatic spelling.
    #[inline]
    pub fn len(&self) -> usize {
        self.active_vertices.len()
    }

    /// True when the frontier is empty (loop convergence).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.active_vertices.is_empty()
    }

    /// The active vertex at position `i` — the paper's
    /// `get_active_vertex(i)`.
    #[inline]
    pub fn get_active_vertex(&self, i: usize) -> VertexId {
        self.active_vertices[i]
    }

    /// Appends a vertex — the paper's `add_vertex(v)`.
    #[inline]
    pub fn add_vertex(&mut self, v: VertexId) {
        self.active_vertices.push(v);
    }

    /// Membership scan (O(len); dense frontiers answer this in O(1) — the
    /// interface is uniform, the cost is representation-specific).
    pub fn contains(&self, v: VertexId) -> bool {
        self.active_vertices.contains(&v)
    }

    /// Slice view of the active ids.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.active_vertices
    }

    /// Consumes into the underlying vector.
    pub fn into_vec(self) -> Vec<VertexId> {
        self.active_vertices
    }

    /// Removes duplicates (sorts as a side effect).
    pub fn uniquify(&mut self) {
        self.active_vertices.sort_unstable();
        self.active_vertices.dedup();
    }

    /// Empties the frontier, keeping capacity (workhorse reuse between
    /// iterations).
    pub fn clear(&mut self) {
        self.active_vertices.clear();
    }

    /// Iterates the active ids.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.active_vertices.iter().copied()
    }
}

impl FromIterator<VertexId> for SparseFrontier {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        SparseFrontier {
            active_vertices: iter.into_iter().collect(),
        }
    }
}

impl crate::Frontier for SparseFrontier {
    fn len(&self) -> usize {
        self.active_vertices.len()
    }
    fn contains(&self, v: VertexId) -> bool {
        SparseFrontier::contains(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing2_api() {
        let mut f = SparseFrontier::new();
        assert_eq!(f.size(), 0);
        f.add_vertex(7);
        f.add_vertex(3);
        assert_eq!(f.size(), 2);
        assert_eq!(f.get_active_vertex(0), 7);
        assert_eq!(f.get_active_vertex(1), 3);
    }

    #[test]
    fn duplicates_allowed_until_uniquify() {
        let mut f = SparseFrontier::from_vec(vec![5, 2, 5, 2, 5]);
        assert_eq!(f.len(), 5);
        f.uniquify();
        assert_eq!(f.as_slice(), &[2, 5]);
    }

    #[test]
    fn single_and_clear() {
        let mut f = SparseFrontier::single(4);
        assert_eq!(f.len(), 1);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn from_iterator() {
        let f: SparseFrontier = (0..4).collect();
        assert_eq!(f.as_slice(), &[0, 1, 2, 3]);
    }
}
