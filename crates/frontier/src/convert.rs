//! Conversions between frontier representations.
//!
//! Direction-optimizing traversal (E3) flips representation per iteration:
//! sparse→dense when the frontier grows past a density threshold (pull
//! iterations test membership), dense→sparse when it shrinks again. The
//! conversions preserve the *set* of active vertices; sparse duplicates
//! collapse on the way in.

use crate::dense::DenseFrontier;
use crate::queue::QueueFrontier;
use crate::sparse::SparseFrontier;

/// Sparse → dense over a universe of `n` vertices. Duplicates collapse.
pub fn sparse_to_dense(s: &SparseFrontier, n: usize) -> DenseFrontier {
    let d = DenseFrontier::new(n);
    for v in s.iter() {
        d.insert(v);
    }
    d
}

/// Dense → sparse (ascending id order, no duplicates), word-at-a-time:
/// all-zero bitmap words cost one load, set words decode with
/// `trailing_zeros` straight into the push.
pub fn dense_to_sparse(d: &DenseFrontier) -> SparseFrontier {
    let mut out = Vec::with_capacity(d.len());
    d.for_each_active(|v| out.push(v));
    SparseFrontier::from_vec(out)
}

/// Zero-allocation dense → sparse: decodes into `out` (cleared first), so a
/// recycled frontier vector absorbs the conversion without touching the
/// allocator. Callers reserve capacity once during warm-up; steady-state
/// iterations reuse it.
pub fn dense_to_sparse_into(d: &DenseFrontier, out: &mut Vec<essentials_graph::VertexId>) {
    out.clear();
    out.reserve(d.len());
    d.for_each_active(|v| out.push(v));
}

/// Sparse → queue: every active vertex becomes a message, distributed
/// round-robin over the lanes.
pub fn sparse_to_queue(s: &SparseFrontier, lanes: usize) -> QueueFrontier {
    let q = QueueFrontier::new(lanes);
    for (i, v) in s.iter().enumerate() {
        q.push(i, v);
    }
    q
}

/// Queue → sparse, draining the queue.
pub fn queue_to_sparse(q: &QueueFrontier) -> SparseFrontier {
    SparseFrontier::from_vec(q.drain())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_dense_round_trip_collapses_duplicates() {
        let s = SparseFrontier::from_vec(vec![4, 1, 4, 9]);
        let d = sparse_to_dense(&s, 10);
        assert_eq!(d.len(), 3);
        let s2 = dense_to_sparse(&d);
        assert_eq!(s2.as_slice(), &[1, 4, 9]);
    }

    #[test]
    fn queue_round_trip_preserves_multiset() {
        let s = SparseFrontier::from_vec(vec![3, 3, 7]);
        let q = sparse_to_queue(&s, 2);
        assert_eq!(q.len(), 3);
        let mut back = queue_to_sparse(&q).into_vec();
        back.sort_unstable();
        assert_eq!(back, vec![3, 3, 7]);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_conversions() {
        let s = SparseFrontier::new();
        assert_eq!(sparse_to_dense(&s, 5).len(), 0);
        assert!(dense_to_sparse(&DenseFrontier::new(5)).is_empty());
        assert!(queue_to_sparse(&sparse_to_queue(&s, 3)).is_empty());
    }

    #[test]
    fn dense_to_sparse_into_reuses_storage() {
        let d = DenseFrontier::new(130);
        for v in [0, 64, 129] {
            d.insert(v);
        }
        let mut out = Vec::with_capacity(130);
        let ptr = out.as_ptr();
        dense_to_sparse_into(&d, &mut out);
        assert_eq!(out, vec![0, 64, 129]);
        assert_eq!(out.as_ptr(), ptr, "capacity was sufficient; no realloc");
        dense_to_sparse_into(&DenseFrontier::new(130), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ids_map_through_vertexid() {
        let s = SparseFrontier::from_vec(vec![0 as essentials_graph::VertexId]);
        assert!(sparse_to_dense(&s, 1).contains(0));
    }
}
