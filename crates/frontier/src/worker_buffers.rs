//! Lock-free per-worker output buffers for frontier expansion.
//!
//! [`crate::Collector`] guards each per-worker buffer with a mutex: the lock
//! is uncontended by convention, but every push still pays an atomic RMW,
//! and adjacent `Mutex<Vec>` headers share cache lines, so workers false-
//! share on each other's buffer metadata. `WorkerBuffers` drops both costs:
//! each worker's `Vec` lives in its own cache-line-aligned slot behind an
//! `UnsafeCell`, and a push is a plain `Vec::push`. Capacity is retained
//! across [`WorkerBuffers::drain_into`] calls, so a steady-state BSP
//! iteration that reuses one `WorkerBuffers` (the advance scratch) performs
//! no heap allocation.
//!
//! Safety model: mutation through the shared [`WorkerView`] is `unsafe` with
//! a single contract — slot `tid` is touched by at most one thread at a time.
//! The thread-pool's parallel regions provide exactly that (each worker id
//! runs on one OS thread), and debug builds verify it by recording the first
//! claiming thread per slot per region. Algorithm code never sees the
//! `unsafe`: it is confined to the advance operators in `essentials-core`.

use std::cell::UnsafeCell;

use essentials_graph::VertexId;

/// One worker's buffer in its own cache line (128 bytes covers the spatial
/// prefetcher pairing lines on x86).
#[repr(align(128))]
#[derive(Default)]
struct Slot {
    buf: UnsafeCell<Vec<VertexId>>,
    /// Debug-only owner tracking: hash of the first thread to push into this
    /// slot since the last reset; 0 = unclaimed.
    #[cfg(debug_assertions)]
    owner: std::sync::atomic::AtomicU64,
}

/// Per-worker, lock-free output buffers (see module docs).
#[derive(Default)]
pub struct WorkerBuffers {
    slots: Box<[Slot]>,
}

impl WorkerBuffers {
    /// Buffers for `workers` worker threads (minimum 1).
    pub fn new(workers: usize) -> Self {
        WorkerBuffers {
            slots: (0..workers.max(1)).map(|_| Slot::default()).collect(), // alloc-ok: cold constructor
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Grows (never shrinks) to at least `workers` slots, keeping existing
    /// buffer capacity.
    pub fn ensure_workers(&mut self, workers: usize) {
        if workers > self.slots.len() {
            let mut slots = std::mem::take(&mut self.slots).into_vec();
            slots.resize_with(workers, Slot::default);
            self.slots = slots.into_boxed_slice();
        }
    }

    /// Total buffered entries.
    pub fn len(&mut self) -> usize {
        self.slots.iter_mut().map(|s| s.buf.get_mut().len()).sum()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Shared view for one parallel region. Taking `&mut self` guarantees no
    /// other view exists when the region starts; debug owner tracking is
    /// reset so the new region's claims start fresh.
    pub fn view(&mut self) -> WorkerView<'_> {
        #[cfg(debug_assertions)]
        for s in self.slots.iter() {
            s.owner.store(0, std::sync::atomic::Ordering::Relaxed);
        }
        WorkerView { slots: &self.slots }
    }

    /// Moves every buffered entry into `out` (appending), emptying the
    /// buffers but keeping their capacity. Concatenation order follows
    /// worker id, so the result is deterministic given a deterministic work
    /// division.
    pub fn drain_into(&mut self, out: &mut Vec<VertexId>) {
        let total: usize = self.len();
        out.reserve(total);
        for s in self.slots.iter_mut() {
            out.append(s.buf.get_mut());
        }
    }

    /// Per-worker buffered entry counts, in worker-id order. Read between a
    /// parallel region and [`WorkerBuffers::drain_into`], this is the
    /// per-worker push distribution of the region (observability's
    /// load-balance skew input). Allocates; callers gate on whether anyone
    /// wants the detail.
    pub fn slot_lens(&mut self) -> Vec<usize> {
        self.slots
            .iter_mut()
            .map(|s| s.buf.get_mut().len())
            .collect() // alloc-ok: detail path, gated on a sink requesting per-worker stats
    }

    /// Direct access to one worker's buffer (sequential paths).
    pub fn slot_mut(&mut self, tid: usize) -> &mut Vec<VertexId> {
        let n = self.slots.len();
        self.slots[tid % n].buf.get_mut()
    }
}

/// Shared, `Sync` view over the buffers for the duration of one parallel
/// region. See [`WorkerView::push`] for the access contract.
pub struct WorkerView<'a> {
    slots: &'a [Slot],
}

// SAFETY: all mutation goes through `push`, whose contract restricts each
// slot to a single thread at a time; distinct slots never alias.
unsafe impl Sync for WorkerView<'_> {}

impl WorkerView<'_> {
    /// Appends `v` to worker `tid`'s buffer without synchronization.
    ///
    /// # Safety
    ///
    /// At any instant, at most one thread may be inside `push` for a given
    /// `tid`. Pool regions satisfy this by passing each closure its own
    /// worker id; callers must forward that id unchanged. Debug builds
    /// assert the claim by pinning each slot to its first pushing thread
    /// for the lifetime of the view.
    #[inline]
    pub unsafe fn push(&self, tid: usize, v: VertexId) {
        let slot = &self.slots[tid % self.slots.len()];
        #[cfg(debug_assertions)]
        {
            use std::hash::{Hash, Hasher};
            use std::sync::atomic::Ordering;
            let mut h = std::hash::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            let me = h.finish() | 1; // never 0
            let seen = slot
                .owner
                .compare_exchange(0, me, Ordering::Relaxed, Ordering::Relaxed);
            if let Err(prev) = seen {
                assert_eq!(
                    prev, me,
                    "WorkerView slot {tid} pushed from two different threads"
                );
            }
        }
        // SAFETY: the caller's contract (this fn is `unsafe`) guarantees
        // `tid` is this worker's own slot, so the UnsafeCell is never
        // accessed from two threads at once.
        unsafe { (*slot.buf.get()).push(v) }; // alloc-ok: amortized growth; steady state is alloc-free (tests/zero_alloc.rs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::{Schedule, ThreadPool};

    #[test]
    #[cfg_attr(miri, ignore)] // spins up a real thread pool; Miri runs the serial tests
    fn parallel_pushes_are_all_collected() {
        let pool = ThreadPool::new(4);
        let mut buffers = WorkerBuffers::new(4);
        let view = buffers.view();
        pool.parallel_for_with(0..10_000, Schedule::Dynamic(64), |tid, i| {
            // SAFETY: tid is this worker's own id from the pool.
            unsafe { view.push(tid, i as VertexId) };
        });
        let mut out = Vec::new();
        buffers.drain_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..10_000).collect::<Vec<VertexId>>());
        assert!(buffers.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore)] // spins up a real thread pool; Miri runs the serial tests
    fn capacity_is_retained_across_drains() {
        let pool = ThreadPool::new(2);
        let mut buffers = WorkerBuffers::new(2);
        let mut out = Vec::new();
        let mut caps = Vec::new();
        for _ in 0..3 {
            let view = buffers.view();
            // SAFETY: tid is this worker's own id from the pool.
            pool.parallel_for_with(0..4096, Schedule::Static, |tid, i| unsafe {
                view.push(tid, i as VertexId)
            });
            out.clear();
            buffers.drain_into(&mut out);
            assert_eq!(out.len(), 4096);
            caps.push(
                (0..2)
                    .map(|t| buffers.slot_mut(t).capacity())
                    .collect::<Vec<_>>(),
            );
        }
        // After the first round grows the buffers, later rounds reuse them.
        assert_eq!(caps[1], caps[2]);
    }

    #[test]
    fn ensure_workers_grows_without_dropping_slots() {
        let mut buffers = WorkerBuffers::new(2);
        buffers.slot_mut(0).push(7);
        buffers.ensure_workers(6);
        assert_eq!(buffers.workers(), 6);
        buffers.ensure_workers(3); // never shrinks
        assert_eq!(buffers.workers(), 6);
        let mut out = Vec::new();
        buffers.drain_into(&mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn slot_lens_reports_per_worker_counts() {
        let mut buffers = WorkerBuffers::new(3);
        buffers.slot_mut(0).push(1);
        buffers.slot_mut(0).push(2);
        buffers.slot_mut(2).push(3);
        assert_eq!(buffers.slot_lens(), vec![2, 0, 1]);
        let mut out = Vec::new();
        buffers.drain_into(&mut out);
        assert_eq!(buffers.slot_lens(), vec![0, 0, 0]);
    }

    #[test]
    fn slots_are_cache_line_separated() {
        assert!(std::mem::align_of::<Slot>() >= 128);
        assert!(std::mem::size_of::<Slot>() >= 128);
    }
}
