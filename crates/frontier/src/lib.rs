//! `essentials-frontier` — active sets of vertices or edges (essential
//! component 2).
//!
//! §III-B of the paper: *"The abstraction that enables support for multiple
//! communication models is the use of frontiers with multiple underlying
//! representations … When represented as an asynchronous queue, a frontier
//! can communicate its elements using messages. When represented as a
//! sparse vector or a dense bitmap stored in shared memory, its elements are
//! directly available to all processes. With thoughtful design, regardless
//! of the underlying representation, the top-level interface to query the
//! frontier … remains the same."*
//!
//! * [`sparse::SparseFrontier`] — Listing 2's vector of active vertices.
//! * [`dense::DenseFrontier`] — atomic bitmap; one bit per vertex.
//! * [`queue::QueueFrontier`] — sharded MPMC queue; the message-passing /
//!   asynchronous representation.
//! * [`VertexFrontier`] — a tagged union giving operators one type that can
//!   switch representation mid-algorithm (direction-optimizing BFS flips
//!   sparse↔dense per iteration).
//! * [`edge::EdgeFrontier`] — active *edges*, for edge-centric programs.
//! * [`collector::Collector`] — per-thread output buffers for building the
//!   next frontier from a parallel expansion without a global lock.
//! * [`worker_buffers::WorkerBuffers`] — the lock-free, cache-line-padded,
//!   capacity-retaining successor to the collector; the advance operators'
//!   zero-allocation fast path.
//! * [`double_buffer::DoubleBuffer`] — ping-pong current/next frontier pair
//!   for allocation-free BSP loops.
//! * [`Frontier`] — the representation-independent query interface.

#![warn(missing_docs)]

pub mod collector;
pub mod convert;
pub mod dense;
pub mod double_buffer;
pub mod edge;
pub mod queue;
pub mod sparse;
pub mod worker_buffers;

use essentials_graph::VertexId;

pub use collector::Collector;
pub use dense::DenseFrontier;
pub use double_buffer::DoubleBuffer;
pub use edge::EdgeFrontier;
pub use queue::QueueFrontier;
pub use sparse::SparseFrontier;
pub use worker_buffers::{WorkerBuffers, WorkerView};

/// The top-level query interface every representation answers identically.
pub trait Frontier {
    /// Number of active elements.
    fn len(&self) -> usize;
    /// True when nothing is active — the universal convergence condition of
    /// the paper's iterative loop (`while (f.size() != 0)`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// True if vertex `v` is active. (For representations that can hold
    /// duplicates — sparse, queue — this is membership, not multiplicity.)
    fn contains(&self, v: VertexId) -> bool;
}

/// A vertex frontier whose underlying representation can change between
/// iterations while callers keep using the same interface.
#[derive(Debug, Clone)]
pub enum VertexFrontier {
    /// Vector of active vertex ids (possibly with duplicates).
    Sparse(SparseFrontier),
    /// One bit per vertex.
    Dense(DenseFrontier),
}

impl VertexFrontier {
    /// An empty sparse frontier.
    pub fn sparse() -> Self {
        VertexFrontier::Sparse(SparseFrontier::new())
    }

    /// An empty dense frontier over `n` vertices.
    pub fn dense(n: usize) -> Self {
        VertexFrontier::Dense(DenseFrontier::new(n))
    }

    /// Representation name for traces/benches.
    pub fn kind(&self) -> &'static str {
        match self {
            VertexFrontier::Sparse(_) => "sparse",
            VertexFrontier::Dense(_) => "dense",
        }
    }

    /// Converts into a sparse representation (no-op if already sparse).
    pub fn into_sparse(self) -> SparseFrontier {
        match self {
            VertexFrontier::Sparse(s) => s,
            VertexFrontier::Dense(d) => convert::dense_to_sparse(&d),
        }
    }

    /// Converts into a dense representation over `n` vertices.
    pub fn into_dense(self, n: usize) -> DenseFrontier {
        match self {
            VertexFrontier::Sparse(s) => convert::sparse_to_dense(&s, n),
            VertexFrontier::Dense(d) => {
                assert_eq!(d.capacity(), n, "dense frontier capacity mismatch");
                d
            }
        }
    }
}

impl Frontier for VertexFrontier {
    fn len(&self) -> usize {
        match self {
            VertexFrontier::Sparse(s) => s.len(),
            VertexFrontier::Dense(d) => d.len(),
        }
    }
    fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexFrontier::Sparse(s) => s.contains(v),
            VertexFrontier::Dense(d) => d.contains(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_interface_across_representations() {
        let mut s = SparseFrontier::new();
        s.add_vertex(3);
        s.add_vertex(5);
        let sparse = VertexFrontier::Sparse(s);

        let d = DenseFrontier::new(8);
        d.insert(3);
        d.insert(5);
        let dense = VertexFrontier::Dense(d);

        for f in [&sparse, &dense] {
            assert_eq!(f.len(), 2);
            assert!(f.contains(3) && f.contains(5) && !f.contains(4));
            assert!(!f.is_empty());
        }
        assert_eq!(sparse.kind(), "sparse");
        assert_eq!(dense.kind(), "dense");
    }

    #[test]
    fn representation_switch_preserves_the_set() {
        let mut s = SparseFrontier::new();
        for v in [9, 1, 4, 4] {
            s.add_vertex(v);
        }
        let dense = VertexFrontier::Sparse(s).into_dense(16);
        assert_eq!(dense.len(), 3); // dup collapsed
        let sparse = VertexFrontier::Dense(dense).into_sparse();
        assert_eq!(sparse.as_slice(), &[1, 4, 9]);
    }
}
