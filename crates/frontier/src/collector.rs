//! Per-thread output buffers for building the next frontier in parallel.
//!
//! Listing 3 of the paper guards `output.add_vertex(n)` with a mutex; that
//! is correct but serializes the hot path. The collector keeps one buffer
//! per worker — pushes are contention-free — and concatenates on flush.
//! Operators use it for sparse outputs; dense outputs don't need it
//! (bitmap insertion is already atomic and idempotent). A mutex-guarded
//! construction is kept in `essentials-core`'s literal Listing-3 port for
//! fidelity, with this as the fast path.

use essentials_graph::VertexId;
use parking_lot::Mutex;

use crate::sparse::SparseFrontier;

/// One lock-free-in-practice buffer per worker thread.
pub struct Collector {
    buffers: Vec<Mutex<Vec<VertexId>>>,
}

impl Collector {
    /// A collector for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Collector {
            buffers: (0..threads.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Pushes `v` into worker `tid`'s buffer. The lock is thread-private by
    /// convention (each worker passes its own id), so it is never contended;
    /// it exists to keep the API safe if the convention is broken.
    #[inline]
    pub fn push(&self, tid: usize, v: VertexId) {
        // The per-thread buffer is the sanctioned alternative to allocating
        // (or locking a shared output) inside operators, so both hot-path
        // rules are waived at this one site:
        self.buffers[tid % self.buffers.len()].lock().push(v); // alloc-ok: amortized lane growth; block-ok: lane lock is thread-private by convention, never contended
    }

    /// Pushes many vertices at once.
    pub fn extend(&self, tid: usize, vs: impl IntoIterator<Item = VertexId>) {
        self.buffers[tid % self.buffers.len()].lock().extend(vs);
    }

    /// Total buffered entries.
    pub fn len(&self) -> usize {
        self.buffers.iter().map(|b| b.lock().len()).sum()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concatenates all buffers into a sparse frontier, emptying the
    /// collector. Order is per-thread-deterministic but interleaving across
    /// threads follows worker id, so the result is deterministic given a
    /// deterministic work division.
    pub fn into_frontier(self) -> SparseFrontier {
        // Unwrap the mutexes first so the length sum and the concatenation
        // share one pass over lock-free owned vectors (the old version
        // locked every buffer twice: once inside `len()`, once to drain).
        let bufs: Vec<Vec<VertexId>> = self.buffers.into_iter().map(Mutex::into_inner).collect();
        let mut out = Vec::with_capacity(bufs.iter().map(Vec::len).sum());
        for b in bufs {
            out.extend(b);
        }
        SparseFrontier::from_vec(out)
    }

    /// Drains into a sparse frontier without consuming the collector. Each
    /// buffer is locked exactly once; the output grows as buffer lengths
    /// become known under their own locks.
    pub fn flush(&self) -> SparseFrontier {
        let mut out = Vec::new();
        for b in &self.buffers {
            let mut buf = b.lock();
            out.reserve(buf.len());
            out.append(&mut buf);
        }
        SparseFrontier::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::{Schedule, ThreadPool};

    #[test]
    #[cfg_attr(miri, ignore)] // spins up a real thread pool; Miri runs the serial tests
    fn collects_everything_once() {
        let pool = ThreadPool::new(4);
        let c = Collector::new(4);
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Abuse parallel_for's index as the pushed value; tid unknown, so
        // use index-derived pseudo-tid — correctness only needs no loss.
        pool.parallel_for(0..5000, Schedule::Dynamic(64), |i| {
            let tid = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % 4;
            c.push(tid, i as VertexId);
        });
        let mut f = c.into_frontier();
        f.uniquify();
        assert_eq!(f.len(), 5000);
    }

    #[test]
    fn flush_empties_but_keeps_collector_usable() {
        let c = Collector::new(2);
        c.push(0, 1);
        c.push(1, 2);
        let f = c.flush();
        assert_eq!(f.len(), 2);
        assert!(c.is_empty());
        c.push(0, 3);
        assert_eq!(c.flush().as_slice(), &[3]);
    }

    #[test]
    fn out_of_range_tid_wraps() {
        let c = Collector::new(2);
        c.push(17, 9);
        assert_eq!(c.len(), 1);
    }
}
