//! Dense (bitmap) frontier: one atomic bit per vertex.
//!
//! The representation of choice when a large fraction of vertices is active
//! (the middle iterations of BFS on low-diameter graphs) and for pull
//! traversals, which test membership per in-neighbor — O(1) here vs. O(len)
//! on the sparse vector. Insertion is idempotent and thread-safe, so a
//! parallel expansion needs no uniquify pass.

use essentials_graph::VertexId;
use essentials_parallel::atomics::AtomicBitset;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bitmap-backed frontier over a fixed vertex universe.
#[derive(Debug)]
pub struct DenseFrontier {
    bits: AtomicBitset,
    /// Cached popcount maintained by insert/remove; avoids O(n/64) scans in
    /// the loop convergence check.
    count: AtomicUsize,
}

impl DenseFrontier {
    /// An empty frontier over `n` vertices.
    pub fn new(n: usize) -> Self {
        DenseFrontier {
            bits: AtomicBitset::new(n),
            count: AtomicUsize::new(0),
        }
    }

    /// Vertex-universe size.
    pub fn capacity(&self) -> usize {
        self.bits.len()
    }

    /// Activates `v`; returns true if this call changed it. Thread-safe and
    /// idempotent (the "claim" primitive of parallel expansions).
    #[inline]
    pub fn insert(&self, v: VertexId) -> bool {
        let changed = self.bits.set(v as usize);
        if changed {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        changed
    }

    /// Deactivates `v`; returns true if this call changed it.
    #[inline]
    pub fn remove(&self, v: VertexId) -> bool {
        let changed = self.bits.clear(v as usize);
        if changed {
            self.count.fetch_sub(1, Ordering::Relaxed);
        }
        changed
    }

    /// O(1) membership — what makes pull traversal affordable.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.bits.get(v as usize)
    }

    /// Number of active vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// True when no vertex is active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Active fraction of the universe — operators use this to pick a
    /// traversal direction (E3).
    pub fn density(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.len() as f64 / self.capacity() as f64
        }
    }

    /// Deactivates everything (between iterations; not concurrent with
    /// inserts).
    pub fn clear(&self) {
        self.bits.clear_all();
        self.count.store(0, Ordering::Relaxed);
    }

    /// Iterates active ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.bits.iter_ones().map(|i| i as VertexId)
    }

    /// Calls `f(v)` for every active vertex via the word-parallel scan
    /// ([`AtomicBitset::for_each_set`]): all-zero words cost one load each,
    /// which is what makes dense iteration competitive with sparse below
    /// ~50% density.
    #[inline]
    pub fn for_each_active(&self, mut f: impl FnMut(VertexId)) {
        self.bits.for_each_set(|i| f(i as VertexId));
    }

    /// Activates everything `other` has active (word-level union) and fixes
    /// the cached count. Phase-synchronous like `clear` — not concurrent
    /// with inserts. Capacities must match.
    pub fn union_with(&self, other: &DenseFrontier) {
        let added = self.bits.union_with(&other.bits);
        self.count.fetch_add(added, Ordering::Relaxed);
    }

    /// Deactivates everything `other` has active (word-level `&= !`) and
    /// fixes the cached count. The unvisited-candidates maintenance step of
    /// masked pull: retire this iteration's admissions 64 at a time. Same
    /// phase discipline as [`Self::union_with`].
    pub fn and_not(&self, other: &DenseFrontier) {
        let removed = self.bits.and_not(&other.bits);
        self.count.fetch_sub(removed, Ordering::Relaxed);
    }

    /// Activates the whole universe (word stores; initial candidate set of
    /// masked pull).
    pub fn set_all(&self) {
        self.bits.set_all();
        self.count.store(self.capacity(), Ordering::Relaxed);
    }

    /// The backing bitmap, for word-level kernels (chunked parallel scans).
    #[inline]
    pub fn bits(&self) -> &AtomicBitset {
        &self.bits
    }
}

impl Clone for DenseFrontier {
    fn clone(&self) -> Self {
        let d = DenseFrontier::new(self.capacity());
        for v in self.iter() {
            d.insert(v);
        }
        d
    }
}

impl crate::Frontier for DenseFrontier {
    fn len(&self) -> usize {
        DenseFrontier::len(self)
    }
    fn contains(&self, v: VertexId) -> bool {
        DenseFrontier::contains(self, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_parallel::{Schedule, ThreadPool};

    #[test]
    fn insert_is_idempotent_and_counted_once() {
        let f = DenseFrontier::new(10);
        assert!(f.insert(3));
        assert!(!f.insert(3));
        assert_eq!(f.len(), 1);
        assert!(f.contains(3));
    }

    #[test]
    fn remove_and_clear() {
        let f = DenseFrontier::new(10);
        f.insert(1);
        f.insert(2);
        assert!(f.remove(1));
        assert!(!f.remove(1));
        assert_eq!(f.len(), 1);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn density_and_iteration_order() {
        let f = DenseFrontier::new(100);
        for v in [70, 2, 65] {
            f.insert(v);
        }
        assert!((f.density() - 0.03).abs() < 1e-12);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![2, 65, 70]);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // spins up a real thread pool; Miri runs the serial tests
    fn concurrent_inserts_count_exactly() {
        let pool = ThreadPool::new(4);
        let f = DenseFrontier::new(1000);
        // 4000 inserts over 1000 slots: count must land on exactly 1000.
        pool.parallel_for(0..4000, Schedule::Dynamic(32), |i| {
            f.insert((i % 1000) as VertexId);
        });
        assert_eq!(f.len(), 1000);
        assert_eq!(f.iter().count(), 1000);
    }

    #[test]
    fn word_ops_maintain_cached_count() {
        let a = DenseFrontier::new(200);
        let b = DenseFrontier::new(200);
        for v in [3, 64, 150] {
            a.insert(v);
        }
        for v in [64, 65, 199] {
            b.insert(v);
        }
        a.union_with(&b);
        assert_eq!(a.len(), 5);
        a.and_not(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 150]);
    }

    #[test]
    fn set_all_and_for_each_active() {
        let f = DenseFrontier::new(70);
        f.set_all();
        assert_eq!(f.len(), 70);
        assert!((f.density() - 1.0).abs() < 1e-12);
        let mut seen = Vec::new();
        f.for_each_active(|v| seen.push(v));
        assert_eq!(seen.len(), 70);
        assert_eq!(seen.last(), Some(&69));
    }

    #[test]
    fn clone_preserves_set() {
        let f = DenseFrontier::new(50);
        f.insert(10);
        f.insert(49);
        let g = f.clone();
        assert_eq!(g.len(), 2);
        assert!(g.contains(49));
    }
}
