//! Property-based tests: frontier conversions preserve the active set,
//! queues preserve multisets, collectors lose nothing.

use essentials_frontier::{
    convert, Collector, DenseFrontier, Frontier, QueueFrontier, SparseFrontier, VertexFrontier,
};
use essentials_graph::VertexId;
use proptest::prelude::*;

fn arb_ids(universe: usize) -> impl Strategy<Value = Vec<VertexId>> {
    prop::collection::vec(0..universe as VertexId, 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_dense_round_trip_is_set_semantics(ids in arb_ids(256)) {
        let s = SparseFrontier::from_vec(ids.clone());
        let d = convert::sparse_to_dense(&s, 256);
        let back = convert::dense_to_sparse(&d);
        let mut expected = ids.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(back.into_vec(), expected.clone());
        prop_assert_eq!(d.len(), expected.len());
        for v in 0..256u32 {
            prop_assert_eq!(d.contains(v), expected.contains(&v));
        }
    }

    #[test]
    fn queue_round_trip_is_multiset_semantics(ids in arb_ids(100), lanes in 1usize..6) {
        let s = SparseFrontier::from_vec(ids.clone());
        let q = convert::sparse_to_queue(&s, lanes);
        prop_assert_eq!(q.len(), ids.len());
        let mut back = convert::queue_to_sparse(&q).into_vec();
        back.sort_unstable();
        let mut expected = ids.clone();
        expected.sort_unstable();
        prop_assert_eq!(back, expected);
    }

    #[test]
    fn queue_pop_from_any_lane_drains_everything(ids in arb_ids(50), lanes in 1usize..5) {
        let q = QueueFrontier::new(lanes);
        for (i, &v) in ids.iter().enumerate() {
            q.push(i, v);
        }
        let mut popped = Vec::new();
        while let Some(v) = q.pop(7) {
            popped.push(v);
        }
        popped.sort_unstable();
        let mut expected = ids.clone();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
        prop_assert!(q.is_empty());
    }

    #[test]
    fn uniquify_equals_sort_dedup(ids in arb_ids(64)) {
        let mut f = SparseFrontier::from_vec(ids.clone());
        f.uniquify();
        let mut expected = ids;
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(f.into_vec(), expected);
    }

    #[test]
    fn collector_preserves_all_pushes(ids in arb_ids(1000), buckets in 1usize..6) {
        let c = Collector::new(buckets);
        for (i, &v) in ids.iter().enumerate() {
            c.push(i % buckets, v);
        }
        prop_assert_eq!(c.len(), ids.len());
        let mut got = c.into_frontier().into_vec();
        got.sort_unstable();
        let mut expected = ids;
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn vertex_frontier_interface_is_representation_independent(ids in arb_ids(128)) {
        let sparse = VertexFrontier::Sparse(SparseFrontier::from_vec(ids.clone()));
        let dense = {
            let d = DenseFrontier::new(128);
            for &v in &ids {
                d.insert(v);
            }
            VertexFrontier::Dense(d)
        };
        let mut distinct = ids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // Dense reports set cardinality; sparse reports multiset length —
        // the *membership* interface is what must agree.
        prop_assert_eq!(dense.len(), distinct.len());
        for v in 0..128u32 {
            prop_assert_eq!(sparse.contains(v), dense.contains(v));
        }
        // Representation switches preserve the set.
        let round = VertexFrontier::Sparse(sparse.into_sparse())
            .into_dense(128);
        prop_assert_eq!(round.len(), distinct.len());
    }

    #[test]
    fn dense_remove_then_len_is_consistent(
        ids in arb_ids(64),
        removals in arb_ids(64),
    ) {
        let d = DenseFrontier::new(64);
        let mut model = std::collections::BTreeSet::new();
        for &v in &ids {
            d.insert(v);
            model.insert(v);
        }
        for &v in &removals {
            let did = d.remove(v);
            prop_assert_eq!(did, model.remove(&v));
        }
        prop_assert_eq!(d.len(), model.len());
        prop_assert_eq!(d.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn word_decode_paths_agree_with_iter(
        // Universe deliberately off the word boundary most of the time so
        // the tail word is exercised; 0 ids covers the empty extreme.
        universe in 1usize..600,
        ids in prop::collection::vec(0..600u32, 0..600),
    ) {
        let d = DenseFrontier::new(universe);
        let mut model = std::collections::BTreeSet::new();
        for &v in &ids {
            if (v as usize) < universe {
                d.insert(v);
                model.insert(v);
            }
        }
        let expected: Vec<VertexId> = model.into_iter().collect();
        // Word-at-a-time decode.
        let mut via_words = Vec::new();
        d.for_each_active(|v| via_words.push(v));
        prop_assert_eq!(&via_words, &expected);
        // Word-at-a-time conversion, both the allocating and reusing forms.
        prop_assert_eq!(convert::dense_to_sparse(&d).into_vec(), expected.clone());
        let mut reused = vec![0u32; 3]; // dirty storage must be cleared
        convert::dense_to_sparse_into(&d, &mut reused);
        prop_assert_eq!(&reused, &expected);
        // Full extreme: set_all covers the whole universe including the tail.
        d.set_all();
        prop_assert_eq!(d.len(), universe);
        let mut full = Vec::new();
        d.for_each_active(|v| full.push(v));
        prop_assert_eq!(full, (0..universe as VertexId).collect::<Vec<_>>());
    }

    #[test]
    fn dense_word_ops_match_set_algebra(
        universe in 1usize..300,
        a_ids in prop::collection::vec(0..300u32, 0..300),
        b_ids in prop::collection::vec(0..300u32, 0..300),
    ) {
        use std::collections::BTreeSet;
        let a = DenseFrontier::new(universe);
        let b = DenseFrontier::new(universe);
        let sa: BTreeSet<u32> = a_ids.iter().copied().filter(|&v| (v as usize) < universe).collect();
        let sb: BTreeSet<u32> = b_ids.iter().copied().filter(|&v| (v as usize) < universe).collect();
        for &v in &sa { a.insert(v); }
        for &v in &sb { b.insert(v); }
        a.union_with(&b);
        prop_assert_eq!(a.len(), sa.union(&sb).count());
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), sa.union(&sb).copied().collect::<Vec<_>>());
        a.and_not(&b);
        prop_assert_eq!(a.len(), sa.difference(&sb).count());
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), sa.difference(&sb).copied().collect::<Vec<_>>());
    }
}
