//! The long-lived serving engine: one immutable graph, one thread pool,
//! N concurrent requests.
//!
//! An [`Engine`] is the composition of the three serving primitives:
//!
//! - an immutable `Arc<Graph>` shared by every request (graph analytics
//!   queries are read-only, so the graph needs no locking — only the
//!   per-request *working* state does),
//! - the [`Admission`] gate bounding concurrency and keeping the light
//!   class (probes) ahead of cap-blocked heavies (analytics),
//! - the [`ScratchPool`], sized exactly to the permit count so every
//!   admitted request leases a warm scratch slot and runs allocation-free
//!   after warm-up.
//!
//! Every request flows through the same private pipeline
//! ([`Engine::serve`]): acquire permit → lease scratch → build a
//! request-scoped [`Context`] (shared pool + leased scratch + the
//! request's own [`RunBudget`]) → run the algorithm → emit one
//! [`RequestEvent`] with queue/service split. Deadlines and cancellation
//! apply to the *whole* request: a deadline can expire in the queue
//! (→ [`ServeError::Rejected`]) or mid-run (→ [`ServeError::Exec`]), and
//! either way the permit and lease return on drop, so the engine is
//! immediately reusable — the resilience contract of the `try_*`
//! algorithms lifted to the serving layer.

use crate::admission::{Admission, AdmissionError, Class};
use crate::pool::ScratchPool;
use essentials_algos::bfs::{try_bfs, BfsResult};
use essentials_algos::multi_source::{try_bfs_multi_source, MsBfsResult};
use essentials_algos::pagerank::{try_pagerank_push, PageRankResult, PrConfig};
use essentials_core::prelude::*;
use essentials_obs::{ObsSink, RequestEvent};
use essentials_parallel::{ExecError, RunBudget, ThreadPool};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads in the shared pool (subject to the
    /// [`resolve_threads`] environment override, like [`Context::new`]).
    pub threads: usize,
    /// Concurrent in-flight requests (= scratch-pool slots).
    pub permits: usize,
    /// Of those, how many may be heavy-class at once.
    pub heavy_permits: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 4,
            permits: 4,
            heavy_permits: 2,
        }
    }
}

/// Why a request failed (see variants).
#[derive(Debug)]
pub enum ServeError {
    /// Never admitted: queued past its deadline or cancelled while queued.
    Rejected(AdmissionError),
    /// Admitted but the run failed (budget, worker panic, divergence).
    Exec(ExecError),
}

impl ServeError {
    /// Stable outcome label for observability rows.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Rejected(e) => e.kind(),
            ServeError::Exec(e) => e.kind(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "rejected: {e}"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            ServeError::Exec(e) => Some(e),
        }
    }
}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Rejected(e)
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

/// The concurrent query-serving engine (see module docs).
pub struct Engine<W: EdgeValue = ()> {
    graph: Arc<Graph<W>>,
    pool: Arc<ThreadPool>,
    scratch: ScratchPool,
    admission: Admission,
    obs: Option<Arc<dyn ObsSink>>,
    ids: AtomicU64,
    /// Recycled batch level tables, bounded by the permit count. A
    /// side-channel free-list, deliberately *not* a scratch checkout:
    /// recycling must never compete with an admitted request for a slot —
    /// the pool is sized exactly to the permit count, and [`Engine::serve`]
    /// relies on a free slot always existing for an admitted request.
    recycled: Mutex<Vec<Vec<u32>>>,
}

impl<W: EdgeValue> Engine<W> {
    /// An engine serving `graph` with the given sizing.
    pub fn new(graph: Arc<Graph<W>>, cfg: EngineConfig) -> Self {
        let permits = cfg.permits.max(1);
        Engine {
            graph,
            pool: Arc::new(ThreadPool::new(resolve_threads(cfg.threads.max(1)))),
            scratch: ScratchPool::new(permits),
            admission: Admission::new(permits, cfg.heavy_permits),
            obs: None,
            ids: AtomicU64::new(0),
            // Full capacity up front so steady-state recycling never grows
            // the free-list's own storage.
            recycled: Mutex::new(Vec::with_capacity(permits)),
        }
    }

    /// Attaches an observability sink; every request emits one
    /// [`RequestEvent`] into it, and run-level events (aborts, iteration
    /// spans) flow through the request's context as usual.
    pub fn with_obs(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.obs = Some(sink);
        self
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &Arc<Graph<W>> {
        &self.graph
    }

    /// Admission snapshot `(in_flight, heavy_in_flight, queued)`.
    pub fn load(&self) -> (usize, usize, usize) {
        self.admission.snapshot()
    }

    /// Single-source BFS (light class).
    pub fn bfs(&self, source: VertexId, budget: RunBudget) -> Result<BfsResult, ServeError> {
        self.serve(Class::Light, "bfs", budget, |ctx| {
            try_bfs(execution::par, ctx, &self.graph, source)
        })
    }

    /// Multi-source batched BFS (light class): up to 64 sources in one
    /// traversal — the engine's throughput lever. Recycle the result with
    /// [`Engine::recycle_batch`] to keep the steady state allocation-free.
    /// A malformed batch (too many sources, a source outside the graph) is
    /// rejected as a typed [`ServeError::Exec`] (`invalid-input`) before
    /// any work runs, and the engine stays fully usable.
    pub fn bfs_batch(
        &self,
        sources: &[VertexId],
        budget: RunBudget,
    ) -> Result<MsBfsResult, ServeError> {
        self.serve(Class::Light, "bfs-batch", budget, |ctx| {
            // Seed the leased scratch with a previously recycled level
            // table: results leave the engine with their caller, so this
            // hand-off is what keeps repeated batches allocation-free.
            if let Some(levels) = unpoison(self.recycled.lock()).pop() {
                ctx.recycle_u32_buffer(levels);
            }
            try_bfs_multi_source(execution::par, ctx, &self.graph, sources)
        })
    }

    /// Push-direction PageRank (heavy class; works on CSR-only graphs).
    pub fn pagerank(&self, cfg: PrConfig, budget: RunBudget) -> Result<PageRankResult, ServeError> {
        self.serve(Class::Heavy, "pagerank", budget, |ctx| {
            try_pagerank_push(execution::par, ctx, &self.graph, cfg)
        })
    }

    /// Returns a batch result's level-table storage to the engine so a
    /// later [`Engine::bfs_batch`] reuses it instead of allocating.
    ///
    /// The buffer goes into a bounded free-list private to the engine —
    /// never through a scratch checkout, which would transiently occupy a
    /// slot and break the sizing invariant [`Engine::serve`] relies on
    /// (permits == slots, so an admitted request always finds a free
    /// slot). A full free-list simply drops the buffer: correctness never
    /// depends on recycling.
    pub fn recycle_batch(&self, r: MsBfsResult) {
        let mut stash = unpoison(self.recycled.lock());
        if stash.len() < self.scratch.len() {
            stash.push(r.levels);
        }
    }

    /// The shared request pipeline: admit, lease scratch, run, observe.
    fn serve<T>(
        &self,
        class: Class,
        kind: &'static str,
        budget: RunBudget,
        run: impl FnOnce(&Context) -> Result<T, ExecError>,
    ) -> Result<T, ServeError> {
        let id = self.ids.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let permit = match self
            .admission
            .acquire(class, budget.deadline(), budget.cancel_token())
        {
            Ok(p) => p,
            Err(e) => {
                self.emit(RequestEvent {
                    id,
                    class: class.name(),
                    kind,
                    outcome: e.kind(),
                    queue_ns: t0.elapsed().as_nanos() as u64,
                    service_ns: 0,
                    scratch_key: usize::MAX,
                });
                return Err(ServeError::Rejected(e));
            }
        };
        let queue_ns = t0.elapsed().as_nanos() as u64;
        // Admission grants at most `permits` concurrent requests and the
        // pool has exactly `permits` slots, so a free slot always exists.
        let lease = self
            .scratch
            .checkout()
            .expect("scratch pool sized to admission permits"); // unwrap-ok: invariant by construction
        let mut ctx =
            Context::with_parts(self.pool.clone(), lease.scratch().clone()).with_budget(budget);
        if let Some(sink) = &self.obs {
            ctx = ctx.with_obs(sink.clone());
        }
        let t1 = Instant::now();
        let result = run(&ctx);
        let service_ns = t1.elapsed().as_nanos() as u64;
        self.emit(RequestEvent {
            id,
            class: class.name(),
            kind,
            outcome: match &result {
                Ok(_) => "ok",
                Err(e) => e.kind(),
            },
            queue_ns,
            service_ns,
            scratch_key: lease.key(),
        });
        drop(lease);
        drop(permit);
        result.map_err(ServeError::Exec)
    }

    fn emit(&self, ev: RequestEvent) {
        if let Some(sink) = &self.obs {
            sink.on_request(&ev);
        }
    }
}

/// Forgives lock poisoning on the recycle free-list: the state is a plain
/// vector of owned buffers, consistent whenever the lock is free, and a
/// panicking client thread must not wedge recycling forever.
fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Coo;

    fn chain_engine(cfg: EngineConfig) -> Engine {
        // 0 → 1 → 2 → 3, plus 4 isolated.
        let g = Graph::from_coo(&Coo::<()>::from_edges(
            5,
            [(0, 1, ()), (1, 2, ()), (2, 3, ())],
        ));
        Engine::new(Arc::new(g), cfg)
    }

    #[test]
    fn bfs_and_batch_agree_through_the_engine() {
        let eng = chain_engine(EngineConfig::default());
        let single = eng.bfs(0, RunBudget::unlimited()).expect("bfs");
        let batch = eng
            .bfs_batch(&[0, 2], RunBudget::unlimited())
            .expect("batch");
        assert_eq!(batch.source_levels(0), single.level);
        assert_eq!(
            batch.source_levels(1),
            vec![
                essentials_algos::bfs::UNVISITED,
                essentials_algos::bfs::UNVISITED,
                0,
                1,
                essentials_algos::bfs::UNVISITED
            ]
        );
        eng.recycle_batch(batch);
    }

    #[test]
    fn recycled_batch_storage_feeds_the_next_batch() {
        // The free-list hand-off: a recycled level table is the storage the
        // next batched request runs on — without the recycler ever checking
        // out a scratch slot (permits = 1 makes any transient checkout by
        // recycling indistinguishable from a stolen slot).
        let eng = chain_engine(EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        });
        let b1 = eng
            .bfs_batch(&[0, 2], RunBudget::unlimited())
            .expect("batch 1");
        let ptr = b1.levels.as_ptr();
        eng.recycle_batch(b1);
        let b2 = eng
            .bfs_batch(&[0, 2], RunBudget::unlimited())
            .expect("batch 2");
        assert_eq!(b2.levels.as_ptr(), ptr, "recycled storage reused");
    }

    #[test]
    fn malformed_batch_is_rejected_and_engine_stays_usable() {
        let eng = chain_engine(EngineConfig::default());
        let err = eng
            .bfs_batch(&[99], RunBudget::unlimited())
            .expect_err("out-of-range source must be rejected");
        assert_eq!(err.kind(), "invalid-input");
        let too_many = vec![0u32; 65];
        let err = eng
            .bfs_batch(&too_many, RunBudget::unlimited())
            .expect_err("oversized batch must be rejected");
        assert_eq!(err.kind(), "invalid-input");
        let ok = eng
            .bfs_batch(&[0], RunBudget::unlimited())
            .expect("engine reusable after rejections");
        assert_eq!(ok.source_levels(0)[3], 3);
        assert_eq!(eng.load(), (0, 0, 0), "permits and leases all returned");
    }

    #[test]
    fn pagerank_serves_on_heavy_class() {
        let eng = chain_engine(EngineConfig::default());
        let pr = eng
            .pagerank(PrConfig::default(), RunBudget::unlimited())
            .expect("pagerank");
        assert_eq!(pr.rank.len(), 5);
        let sum: f64 = pr.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to 1, got {sum}");
    }

    #[test]
    fn expired_deadline_rejects_and_engine_stays_usable() {
        let eng = chain_engine(EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        });
        // A deadline already in the past fails fast — in the queue if the
        // permit is busy, mid-run otherwise — and either way the engine
        // serves the next request normally.
        let expired = RunBudget::unlimited().with_timeout(std::time::Duration::ZERO);
        let err = eng.bfs(0, expired).expect_err("must miss the deadline");
        assert!(
            matches!(err.kind(), "deadline-expired" | "queue-deadline"),
            "unexpected outcome {}",
            err.kind()
        );
        let ok = eng.bfs(0, RunBudget::unlimited()).expect("engine reusable");
        assert_eq!(ok.level[3], 3);
    }
}
