//! The long-lived serving engine: one immutable graph, one thread pool,
//! N concurrent requests.
//!
//! An [`Engine`] is the composition of the three serving primitives:
//!
//! - an immutable `Arc<Graph>` shared by every request (graph analytics
//!   queries are read-only, so the graph needs no locking — only the
//!   per-request *working* state does),
//! - the [`Admission`] gate bounding concurrency and keeping the light
//!   class (probes) ahead of cap-blocked heavies (analytics),
//! - the [`ScratchPool`], sized exactly to the permit count so every
//!   admitted request leases a warm scratch slot and runs allocation-free
//!   after warm-up.
//!
//! Every request flows through the same private pipeline
//! ([`Engine::serve_with`]): feasibility gate → acquire permit → lease
//! scratch → build a request-scoped [`Context`] (shared pool + leased
//! scratch + the request's own [`RunBudget`]) → run the algorithm → emit
//! one [`RequestEvent`] with queue/service split. Deadlines and
//! cancellation apply to the *whole* request: a deadline can expire in the
//! queue (→ [`ServeError::Rejected`]) or mid-run (→ [`ServeError::Exec`]),
//! and either way the permit and lease return on drop, so the engine is
//! immediately reusable — the resilience contract of the `try_*`
//! algorithms lifted to the serving layer.
//!
//! ## Overload resilience (DESIGN.md §16)
//!
//! Three mechanisms keep the engine useful *under* stress, not just after
//! it:
//!
//! - **Deadline-feasibility shedding.** A per-class EWMA of observed
//!   service times ([`ServiceEstimator`]) predicts, at arrival, whether a
//!   deadline request can possibly finish in time given the current
//!   backlog. An infeasible request is rejected *immediately* with
//!   [`AdmissionError::Shed`] instead of queueing, holding a ticket, and
//!   timing out later — the queue stays short and feasible requests keep
//!   their deadlines.
//! - **Degraded-mode results (brownout).** Heavy iterative requests may
//!   opt in via [`Engine::pagerank_degradable`] / [`Engine::hits_degradable`]:
//!   when the full run is predicted infeasible, the engine runs a
//!   capped-iteration version and returns the partial result tagged
//!   [`Outcome::Degraded`] with the achieved residual — an approximate
//!   answer now instead of no answer after the deadline.
//! - **Scratch quarantine.** A panic captured while a scratch lease was
//!   held parks the slot in quarantine ([`ScratchLease::quarantine`]);
//!   it is rebuilt lazily on next demand, so capacity is never lost and
//!   possibly-inconsistent scratch is never reused. [`Engine::health`]
//!   surfaces the live and cumulative counts.
//!
//! Request-keyed fault injection ([`Engine::with_chaos`]) drives all three
//! paths deterministically in the chaos soak (`tests/chaos.rs`, bench
//! experiment `chaos`).

use crate::admission::{Admission, AdmissionError, Class};
use crate::pool::{ScratchLease, ScratchPool};
use essentials_algos::bfs::{try_bfs, BfsResult};
use essentials_algos::hits::{try_hits, HitsConfig, HitsResult};
use essentials_algos::multi_source::{try_bfs_multi_source, MsBfsResult};
use essentials_algos::pagerank::{try_pagerank_push, PageRankResult, PrConfig};
use essentials_core::prelude::*;
use essentials_obs::{ObsSink, RequestEvent, ServiceEstimator};
use essentials_parallel::{
    panic_payload_string, ExecError, FaultPlan, RequestFault, RequestFaultPlan, RunBudget,
    ThreadPool,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads in the shared pool (subject to the
    /// [`resolve_threads`] environment override, like [`Context::new`]).
    pub threads: usize,
    /// Concurrent in-flight requests (= scratch-pool slots).
    pub permits: usize,
    /// Of those, how many may be heavy-class at once.
    pub heavy_permits: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 4,
            permits: 4,
            heavy_permits: 2,
        }
    }
}

/// Brownout policy for a degradable heavy request: the iteration cap the
/// engine falls back to when the full run is predicted
/// deadline-infeasible. A browned-out power iteration still produces a
/// usable approximate ranking — each iteration shrinks the residual
/// geometrically, so even a handful of iterations separates the big
/// scores — and the achieved residual is reported in
/// [`Outcome::Degraded`] so callers can judge the approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brownout {
    /// Iteration cap for the degraded run (clamped to the request's own
    /// configured cap; at least 1).
    pub max_iterations: usize,
}

impl Brownout {
    /// A brownout policy capping degraded runs at `max_iterations`.
    pub fn new(max_iterations: usize) -> Self {
        Brownout {
            max_iterations: max_iterations.max(1),
        }
    }
}

/// How completely a served request ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The full computation ran to its configured convergence criteria.
    Full,
    /// A brownout run: iterations were capped below convergence because
    /// the full run was predicted deadline-infeasible.
    Degraded {
        /// Iterations the degraded run completed.
        iterations: usize,
        /// Achieved residual (the algorithm's `final_error`) at the cap —
        /// how far from converged the returned values are.
        residual: f64,
    },
}

impl Outcome {
    /// Stable outcome label for observability rows (`"ok"` /
    /// `"degraded"`).
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Full => "ok",
            Outcome::Degraded { .. } => "degraded",
        }
    }

    /// Whether this is a degraded (browned-out) result.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Outcome::Degraded { .. })
    }
}

/// A served result plus how completely it ran. Returned by the
/// degradable endpoints; the plain endpoints return the bare value (they
/// never degrade).
#[derive(Debug, Clone)]
pub struct Response<T> {
    /// The algorithm's result (partial when degraded).
    pub value: T,
    /// Full or degraded (see [`Outcome`]).
    pub outcome: Outcome,
}

/// One consistent-enough snapshot of engine occupancy and resilience
/// counters. Slot counts come from one pass over the pool, so
/// `free_slots + leased_slots + quarantined_slots == permits` always
/// holds — the zero-leak invariant the chaos soak asserts while faults
/// are flying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineHealth {
    /// Configured permit count (= scratch slots).
    pub permits: usize,
    /// Requests currently holding a permit.
    pub in_flight: usize,
    /// Of those, heavy-class requests.
    pub heavy_in_flight: usize,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Scratch slots currently free.
    pub free_slots: usize,
    /// Scratch slots currently leased.
    pub leased_slots: usize,
    /// Scratch slots currently quarantined (awaiting lazy rebuild).
    pub quarantined_slots: usize,
    /// Cumulative quarantine events.
    pub quarantined_total: u64,
    /// Cumulative lazy rebuilds of quarantined slots.
    pub rebuilt_total: u64,
    /// Cumulative requests shed by the deadline-feasibility gate.
    pub shed_total: u64,
    /// Cumulative degraded (browned-out) results returned.
    pub degraded_total: u64,
}

/// Why a request failed (see variants).
#[derive(Debug)]
pub enum ServeError {
    /// Never admitted: queued past its deadline, cancelled while queued,
    /// or shed by the deadline-feasibility gate.
    Rejected(AdmissionError),
    /// Admitted but the run failed (budget, worker panic, divergence).
    Exec(ExecError),
}

impl ServeError {
    /// Stable outcome label for observability rows.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Rejected(e) => e.kind(),
            ServeError::Exec(e) => e.kind(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "rejected: {e}"),
            ServeError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            ServeError::Exec(e) => Some(e),
        }
    }
}

impl From<AdmissionError> for ServeError {
    fn from(e: AdmissionError) -> Self {
        ServeError::Rejected(e)
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

/// The concurrent query-serving engine (see module docs).
pub struct Engine<W: EdgeValue = ()> {
    graph: Arc<Graph<W>>,
    pool: Arc<ThreadPool>,
    scratch: ScratchPool,
    admission: Admission,
    obs: Option<Arc<dyn ObsSink>>,
    estimator: ServiceEstimator,
    chaos: Option<Arc<RequestFaultPlan>>,
    ids: AtomicU64,
    /// Cumulative requests shed by the feasibility gate (Relaxed counter;
    /// ordering relative to other requests is irrelevant for a total).
    shed_total: AtomicU64,
    /// Cumulative degraded results returned (Relaxed counter).
    degraded_total: AtomicU64,
    /// Recycled batch level tables, bounded by the permit count. A
    /// side-channel free-list, deliberately *not* a scratch checkout:
    /// recycling must never compete with an admitted request for a slot —
    /// the pool is sized exactly to the permit count, and the serve
    /// pipeline relies on a claimable slot always existing for an admitted
    /// request.
    recycled: Mutex<Vec<Vec<u32>>>,
}

impl<W: EdgeValue> Engine<W> {
    /// An engine serving `graph` with the given sizing.
    pub fn new(graph: Arc<Graph<W>>, cfg: EngineConfig) -> Self {
        let permits = cfg.permits.max(1);
        Engine {
            graph,
            pool: Arc::new(ThreadPool::new(resolve_threads(cfg.threads.max(1)))),
            scratch: ScratchPool::new(permits),
            admission: Admission::new(permits, cfg.heavy_permits),
            obs: None,
            estimator: ServiceEstimator::new(),
            chaos: None,
            ids: AtomicU64::new(0),
            shed_total: AtomicU64::new(0),
            degraded_total: AtomicU64::new(0),
            // Full capacity up front so steady-state recycling never grows
            // the free-list's own storage.
            recycled: Mutex::new(Vec::with_capacity(permits)),
        }
    }

    /// Attaches an observability sink; every request emits one
    /// [`RequestEvent`] into it, and run-level events (aborts, iteration
    /// spans) flow through the request's context as usual.
    pub fn with_obs(mut self, sink: Arc<dyn ObsSink>) -> Self {
        self.obs = Some(sink);
        self
    }

    /// Attaches a request-keyed fault plan: each arriving request looks up
    /// its engine-assigned id in the plan and, on a hit, suffers the
    /// registered fault (mid-run panic, service delay, exhausted budget,
    /// poisoned recycle lock). Deterministic — the same plan against the
    /// same request sequence injects the same faults — which is what makes
    /// chaos failures replayable by `(request, iteration, chunk)` key.
    pub fn with_chaos(mut self, plan: Arc<RequestFaultPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &Arc<Graph<W>> {
        &self.graph
    }

    /// The per-class service-time estimator feeding the feasibility gate.
    /// Exposed so harnesses can pre-warm predictions or inspect them; the
    /// engine feeds it automatically from every completed request.
    pub fn estimator(&self) -> &ServiceEstimator {
        &self.estimator
    }

    /// Admission snapshot `(in_flight, heavy_in_flight, queued)`.
    pub fn load(&self) -> (usize, usize, usize) {
        self.admission.snapshot()
    }

    /// Occupancy and resilience snapshot (see [`EngineHealth`]).
    pub fn health(&self) -> EngineHealth {
        let (in_flight, heavy_in_flight, queued) = self.admission.snapshot();
        let c = self.scratch.counts();
        EngineHealth {
            permits: self.scratch.len(),
            in_flight,
            heavy_in_flight,
            queued,
            free_slots: c.free,
            leased_slots: c.leased,
            quarantined_slots: c.quarantined,
            quarantined_total: self.scratch.quarantined_ever(),
            rebuilt_total: self.scratch.rebuilt_ever(),
            shed_total: self.shed_total.load(Ordering::Relaxed),
            degraded_total: self.degraded_total.load(Ordering::Relaxed),
        }
    }

    /// Single-source BFS (light class).
    pub fn bfs(&self, source: VertexId, budget: RunBudget) -> Result<BfsResult, ServeError> {
        self.serve(Class::Light, "bfs", budget, |ctx| {
            try_bfs(execution::par, ctx, &self.graph, source)
        })
    }

    /// Multi-source batched BFS (light class): up to 64 sources in one
    /// traversal — the engine's throughput lever. Recycle the result with
    /// [`Engine::recycle_batch`] to keep the steady state allocation-free.
    /// A malformed batch (too many sources, a source outside the graph) is
    /// rejected as a typed [`ServeError::Exec`] (`invalid-input`) before
    /// any work runs, and the engine stays fully usable.
    pub fn bfs_batch(
        &self,
        sources: &[VertexId],
        budget: RunBudget,
    ) -> Result<MsBfsResult, ServeError> {
        self.serve(Class::Light, "bfs-batch", budget, |ctx| {
            // Seed the leased scratch with a previously recycled level
            // table: results leave the engine with their caller, so this
            // hand-off is what keeps repeated batches allocation-free.
            if let Some(levels) = unpoison(self.recycled.lock()).pop() {
                ctx.recycle_u32_buffer(levels);
            }
            try_bfs_multi_source(execution::par, ctx, &self.graph, sources)
        })
    }

    /// Push-direction PageRank (heavy class; works on CSR-only graphs).
    /// Never degrades: an infeasible deadline sheds instead — use
    /// [`Engine::pagerank_degradable`] to opt into brownout.
    pub fn pagerank(&self, cfg: PrConfig, budget: RunBudget) -> Result<PageRankResult, ServeError> {
        self.serve(Class::Heavy, "pagerank", budget, |ctx| {
            try_pagerank_push(execution::par, ctx, &self.graph, cfg)
        })
    }

    /// HITS hub/authority scores (heavy class; the graph must have been
    /// built `with_csc`). Never degrades; see
    /// [`Engine::hits_degradable`].
    pub fn hits(&self, cfg: HitsConfig, budget: RunBudget) -> Result<HitsResult, ServeError> {
        self.serve(Class::Heavy, "hits", budget, |ctx| {
            try_hits(execution::par, ctx, &self.graph, cfg)
        })
    }

    /// PageRank that opts into brownout: when the feasibility gate
    /// predicts the full run cannot meet its deadline, the engine runs at
    /// most `brownout.max_iterations` iterations and returns the partial
    /// ranking tagged [`Outcome::Degraded`] (with the achieved residual)
    /// instead of shedding. A degraded run that still converges inside the
    /// cap is reported [`Outcome::Full`].
    pub fn pagerank_degradable(
        &self,
        cfg: PrConfig,
        budget: RunBudget,
        brownout: Brownout,
    ) -> Result<Response<PageRankResult>, ServeError> {
        self.serve_with(
            Class::Heavy,
            "pagerank",
            budget,
            Some(brownout),
            |ctx, degrade| {
                let mut cfg = cfg;
                if let Some(b) = degrade {
                    cfg.max_iterations = cfg.max_iterations.min(b.max_iterations).max(1);
                }
                let r = try_pagerank_push(execution::par, ctx, &self.graph, cfg)?;
                let outcome = match degrade {
                    Some(_) if r.final_error > cfg.tolerance => Outcome::Degraded {
                        iterations: r.stats.iterations,
                        residual: r.final_error,
                    },
                    _ => Outcome::Full,
                };
                Ok((r, outcome))
            },
        )
    }

    /// HITS that opts into brownout (see [`Engine::pagerank_degradable`];
    /// the graph must have been built `with_csc`).
    pub fn hits_degradable(
        &self,
        cfg: HitsConfig,
        budget: RunBudget,
        brownout: Brownout,
    ) -> Result<Response<HitsResult>, ServeError> {
        self.serve_with(
            Class::Heavy,
            "hits",
            budget,
            Some(brownout),
            |ctx, degrade| {
                let mut cfg = cfg;
                if let Some(b) = degrade {
                    cfg.max_iterations = cfg.max_iterations.min(b.max_iterations).max(1);
                }
                let r = try_hits(execution::par, ctx, &self.graph, cfg)?;
                let outcome = match degrade {
                    Some(_) if r.final_error > cfg.tolerance => Outcome::Degraded {
                        iterations: r.stats.iterations,
                        residual: r.final_error,
                    },
                    _ => Outcome::Full,
                };
                Ok((r, outcome))
            },
        )
    }

    /// Returns a batch result's level-table storage to the engine so a
    /// later [`Engine::bfs_batch`] reuses it instead of allocating.
    ///
    /// The buffer goes into a bounded free-list private to the engine —
    /// never through a scratch checkout, which would transiently occupy a
    /// slot and break the sizing invariant the serve pipeline relies on
    /// (permits == slots, so an admitted request always finds a free
    /// slot). A full free-list simply drops the buffer: correctness never
    /// depends on recycling.
    pub fn recycle_batch(&self, r: MsBfsResult) {
        let mut stash = unpoison(self.recycled.lock());
        if stash.len() < self.scratch.len() {
            stash.push(r.levels);
        }
    }

    /// Non-degradable requests: plain value out, shed when infeasible.
    fn serve<T>(
        &self,
        class: Class,
        kind: &'static str,
        budget: RunBudget,
        run: impl FnOnce(&Context) -> Result<T, ExecError>,
    ) -> Result<T, ServeError> {
        self.serve_with(class, kind, budget, None, |ctx, _| {
            run(ctx).map(|v| (v, Outcome::Full))
        })
        .map(|r| r.value)
    }

    /// The shared request pipeline: feasibility gate → admit → lease
    /// scratch → run (under `catch_unwind`) → observe → release or
    /// quarantine. `run` receives the brownout policy to apply (`Some`
    /// exactly when the gate chose degraded mode for an opted-in request).
    fn serve_with<T>(
        &self,
        class: Class,
        kind: &'static str,
        budget: RunBudget,
        brownout: Option<Brownout>,
        run: impl FnOnce(&Context, Option<Brownout>) -> Result<(T, Outcome), ExecError>,
    ) -> Result<Response<T>, ServeError> {
        let id = self.ids.fetch_add(1, Ordering::Relaxed);
        let fault = self.chaos.as_ref().and_then(|p| p.for_request(id));
        let budget = match fault {
            // Chaos: the request arrives with an already-exhausted
            // iteration budget — must fail typed (`iteration-cap`), not
            // hang or leak.
            Some(RequestFault::BudgetExhaust) => budget.with_max_iterations(0),
            _ => budget,
        };
        let t0 = Instant::now();

        // Deadline-feasibility gate (DESIGN.md §16): shed what cannot
        // finish in time, or switch an opted-in request to degraded mode.
        let degrade = if self.predicted_infeasible(class, &budget) {
            match brownout {
                Some(b) => Some(b),
                None => {
                    self.shed_total.fetch_add(1, Ordering::Relaxed);
                    let e = AdmissionError::Shed;
                    self.emit(RequestEvent {
                        id,
                        class: class.name(),
                        kind,
                        outcome: e.kind(),
                        queue_ns: t0.elapsed().as_nanos() as u64,
                        service_ns: 0,
                        scratch_key: usize::MAX,
                    });
                    return Err(ServeError::Rejected(e));
                }
            }
        } else {
            None
        };

        let permit = match self
            .admission
            .acquire(class, budget.deadline(), budget.cancel_token())
        {
            Ok(p) => p,
            Err(e) => {
                self.emit(RequestEvent {
                    id,
                    class: class.name(),
                    kind,
                    outcome: e.kind(),
                    queue_ns: t0.elapsed().as_nanos() as u64,
                    service_ns: 0,
                    scratch_key: usize::MAX,
                });
                return Err(ServeError::Rejected(e));
            }
        };
        let queue_ns = t0.elapsed().as_nanos() as u64;
        // Admission grants at most `permits` concurrent requests and the
        // pool has exactly `permits` slots (quarantined slots are rebuilt
        // on claim, so they still count), so a claimable slot always
        // exists.
        let lease = self
            .scratch
            .checkout()
            .expect("scratch pool sized to admission permits"); // unwrap-ok: invariant by construction
        let mut ctx =
            Context::with_parts(self.pool.clone(), lease.scratch().clone()).with_budget(budget);
        if let Some(sink) = &self.obs {
            ctx = ctx.with_obs(sink.clone());
        }
        if let Some(RequestFault::Panic { iteration, chunk }) = fault {
            // Chaos: a deterministic mid-run panic at a (iteration, chunk)
            // coordinate, captured by the thread pool like any real one.
            ctx = ctx.with_fault_plan(Arc::new(FaultPlan::new().panic_at(iteration, chunk)));
        }
        let t1 = Instant::now();
        match fault {
            // Chaos: stall inside the timed service region so the EWMA
            // sees it and the feasibility gate reacts.
            Some(RequestFault::Delay { micros }) => {
                std::thread::sleep(Duration::from_micros(micros));
            }
            // Chaos: poison the recycle free-list lock mid-service; the
            // stash-clearing `unpoison` must absorb it.
            Some(RequestFault::PoisonLock) => self.poison_recycled(),
            _ => {}
        }
        // The pool already captures worker panics into typed errors; this
        // net catches panics that escape the algorithm itself (malformed
        // setup, chaos injection outside a parallel region), so a serving
        // thread never unwinds through the engine with a lease held.
        let result: Result<(T, Outcome), ExecError> =
            match catch_unwind(AssertUnwindSafe(|| run(&ctx, degrade))) {
                Ok(r) => r,
                Err(payload) => Err(ExecError::WorkerPanic {
                    payload: panic_payload_string(payload.as_ref()),
                    // No chunk coordinate: the panic escaped the chunked
                    // region (or never entered one).
                    chunk: usize::MAX,
                }),
            };
        let service_ns = t1.elapsed().as_nanos() as u64;
        let outcome_label = match &result {
            Ok((_, outcome)) => outcome.label(),
            Err(e) => e.kind(),
        };
        if matches!(result, Ok((_, Outcome::Degraded { .. }))) {
            self.degraded_total.fetch_add(1, Ordering::Relaxed);
        }
        self.emit(RequestEvent {
            id,
            class: class.name(),
            kind,
            outcome: outcome_label,
            queue_ns,
            service_ns,
            scratch_key: lease.key(),
        });
        // A panic while the lease was held may have left the scratch
        // half-written: quarantine the slot instead of freeing it
        // (DESIGN.md §16). Every other outcome returns the slot normally.
        if matches!(result, Err(ExecError::WorkerPanic { .. })) {
            ScratchLease::quarantine(lease);
        } else {
            drop(lease);
        }
        drop(permit);
        result
            .map(|(value, outcome)| Response { value, outcome })
            .map_err(ServeError::Exec)
    }

    /// Whether a deadline request is predicted to miss even if admitted
    /// now: estimated queue-drain wait plus this class's estimated service
    /// time exceeds the time remaining. Conservative by construction —
    /// a cold estimator (no completed requests yet) predicts nothing and
    /// admits everything, and an already-expired deadline is left to the
    /// existing queue/run deadline paths so its error kind stays stable.
    fn predicted_infeasible(&self, class: Class, budget: &RunBudget) -> bool {
        let Some(deadline) = budget.deadline() else {
            return false;
        };
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let Some(service_ns) = self.estimator.estimate_ns(class.name()) else {
            return false;
        };
        let Some(worst_ns) = self.estimator.worst_case_ns() else {
            return false;
        };
        let (in_flight, _, queued) = self.admission.snapshot();
        let permits = self.scratch.len();
        // Requests that must *finish* before ours can start, assuming
        // worst-case service for each, drained `permits` at a time.
        let backlog = (in_flight + queued + 1).saturating_sub(permits) as u64;
        let wait_ns = backlog.saturating_mul(worst_ns) / permits as u64;
        let predicted_ns = wait_ns.saturating_add(service_ns);
        let remaining_ns = deadline.saturating_duration_since(now).as_nanos() as u64;
        predicted_ns > remaining_ns
    }

    /// Chaos helper: poisons the recycle free-list mutex by panicking
    /// while holding it (the panic is caught here; the poison remains).
    fn poison_recycled(&self) {
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = self.recycled.lock();
            panic!("chaos-injected: poison the recycle free-list");
        }));
    }

    fn emit(&self, ev: RequestEvent) {
        self.estimator.observe(&ev);
        if let Some(sink) = &self.obs {
            sink.on_request(&ev);
        }
    }
}

/// Recovers the recycle free-list from lock poisoning — by *discarding*
/// its contents, not trusting them: the panicking holder may have been
/// mid-push, and a recycled buffer is an optimization, never a
/// correctness dependency, so an empty stash is always safe while a
/// half-updated one is not. (This is deliberately stricter than the
/// admission gate's `relock`, whose state must be preserved to keep
/// permits balanced.)
type StashGuard<'a> = MutexGuard<'a, Vec<Vec<u32>>>;

fn unpoison<'a>(r: Result<StashGuard<'a>, PoisonError<StashGuard<'a>>>) -> StashGuard<'a> {
    match r {
        Ok(g) => g,
        Err(poisoned) => {
            // unwrap-ok-style waiver: into_inner never fails; the poison
            // flag is cleared by discarding the suspect contents below.
            let mut g = poisoned.into_inner();
            g.clear();
            g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use essentials_graph::Coo;

    fn chain_engine(cfg: EngineConfig) -> Engine {
        // 0 → 1 → 2 → 3, plus 4 isolated.
        let g = Graph::from_coo(&Coo::<()>::from_edges(
            5,
            [(0, 1, ()), (1, 2, ()), (2, 3, ())],
        ));
        Engine::new(Arc::new(g), cfg)
    }

    #[test]
    fn bfs_and_batch_agree_through_the_engine() {
        let eng = chain_engine(EngineConfig::default());
        let single = eng.bfs(0, RunBudget::unlimited()).expect("bfs");
        let batch = eng
            .bfs_batch(&[0, 2], RunBudget::unlimited())
            .expect("batch");
        assert_eq!(batch.source_levels(0), single.level);
        assert_eq!(
            batch.source_levels(1),
            vec![
                essentials_algos::bfs::UNVISITED,
                essentials_algos::bfs::UNVISITED,
                0,
                1,
                essentials_algos::bfs::UNVISITED
            ]
        );
        eng.recycle_batch(batch);
    }

    #[test]
    fn recycled_batch_storage_feeds_the_next_batch() {
        // The free-list hand-off: a recycled level table is the storage the
        // next batched request runs on — without the recycler ever checking
        // out a scratch slot (permits = 1 makes any transient checkout by
        // recycling indistinguishable from a stolen slot).
        let eng = chain_engine(EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        });
        let b1 = eng
            .bfs_batch(&[0, 2], RunBudget::unlimited())
            .expect("batch 1");
        let ptr = b1.levels.as_ptr();
        eng.recycle_batch(b1);
        let b2 = eng
            .bfs_batch(&[0, 2], RunBudget::unlimited())
            .expect("batch 2");
        assert_eq!(b2.levels.as_ptr(), ptr, "recycled storage reused");
    }

    #[test]
    fn malformed_batch_is_rejected_and_engine_stays_usable() {
        let eng = chain_engine(EngineConfig::default());
        let err = eng
            .bfs_batch(&[99], RunBudget::unlimited())
            .expect_err("out-of-range source must be rejected");
        assert_eq!(err.kind(), "invalid-input");
        let too_many = vec![0u32; 65];
        let err = eng
            .bfs_batch(&too_many, RunBudget::unlimited())
            .expect_err("oversized batch must be rejected");
        assert_eq!(err.kind(), "invalid-input");
        let ok = eng
            .bfs_batch(&[0], RunBudget::unlimited())
            .expect("engine reusable after rejections");
        assert_eq!(ok.source_levels(0)[3], 3);
        assert_eq!(eng.load(), (0, 0, 0), "permits and leases all returned");
    }

    #[test]
    fn pagerank_serves_on_heavy_class() {
        let eng = chain_engine(EngineConfig::default());
        let pr = eng
            .pagerank(PrConfig::default(), RunBudget::unlimited())
            .expect("pagerank");
        assert_eq!(pr.rank.len(), 5);
        let sum: f64 = pr.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to 1, got {sum}");
    }

    #[test]
    fn expired_deadline_rejects_and_engine_stays_usable() {
        let eng = chain_engine(EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        });
        // A deadline already in the past fails fast — in the queue if the
        // permit is busy, mid-run otherwise — and either way the engine
        // serves the next request normally.
        let expired = RunBudget::unlimited().with_timeout(std::time::Duration::ZERO);
        let err = eng.bfs(0, expired).expect_err("must miss the deadline");
        assert!(
            matches!(err.kind(), "deadline-expired" | "queue-deadline"),
            "unexpected outcome {}",
            err.kind()
        );
        let ok = eng.bfs(0, RunBudget::unlimited()).expect("engine reusable");
        assert_eq!(ok.level[3], 3);
    }

    #[test]
    fn infeasible_deadline_is_shed_before_queueing() {
        let eng = chain_engine(EngineConfig::default());
        // Teach the estimator that light requests take ~10s; a 50ms
        // deadline is then predictably infeasible even with zero backlog.
        eng.estimator().record_class("light", 10_000_000_000);
        let err = eng
            .bfs(
                0,
                RunBudget::unlimited().with_timeout(Duration::from_millis(50)),
            )
            .expect_err("predicted-infeasible request must be shed");
        assert_eq!(err.kind(), "shed");
        assert!(matches!(err, ServeError::Rejected(AdmissionError::Shed)));
        assert_eq!(eng.health().shed_total, 1);
        // No deadline → no gate; the engine still serves normally.
        let ok = eng.bfs(0, RunBudget::unlimited()).expect("engine reusable");
        assert_eq!(ok.level[3], 3);
    }

    #[test]
    fn feasible_deadline_is_admitted_despite_warm_estimator() {
        let eng = chain_engine(EngineConfig::default());
        // Realistic tiny estimate; a generous deadline stays feasible.
        eng.estimator().record_class("light", 50_000);
        let ok = eng
            .bfs(
                0,
                RunBudget::unlimited().with_timeout(Duration::from_secs(30)),
            )
            .expect("feasible deadline must be admitted");
        assert_eq!(ok.level[3], 3);
        assert_eq!(eng.health().shed_total, 0);
    }

    #[test]
    fn degradable_pagerank_brownouts_instead_of_shedding() {
        let eng = chain_engine(EngineConfig::default());
        eng.estimator().record_class("heavy", 10_000_000_000);
        let cfg = PrConfig {
            tolerance: 1e-300, // unreachable: every run stops at its cap
            max_iterations: 200,
            ..PrConfig::default()
        };
        let resp = eng
            .pagerank_degradable(
                cfg,
                RunBudget::unlimited().with_timeout(Duration::from_millis(50)),
                Brownout::new(3),
            )
            .expect("degradable request must run, not shed");
        match resp.outcome {
            Outcome::Degraded {
                iterations,
                residual,
            } => {
                assert!(iterations <= 3, "brownout cap respected, ran {iterations}");
                assert!(residual.is_finite() && residual > 0.0);
            }
            Outcome::Full => panic!("expected a degraded outcome"),
        }
        let sum: f64 = resp.value.rank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "partial ranks still sum to 1");
        let health = eng.health();
        assert_eq!(health.degraded_total, 1);
        assert_eq!(health.shed_total, 0, "opt-in requests never shed");
        // Feasible requests through the same endpoint run to convergence.
        let full = eng
            .pagerank_degradable(
                PrConfig::default(),
                RunBudget::unlimited(),
                Brownout::new(3),
            )
            .expect("full run");
        assert_eq!(full.outcome, Outcome::Full);
    }

    #[test]
    fn worker_panic_quarantines_the_slot_and_capacity_recovers() {
        let plan = Arc::new(RequestFaultPlan::new().fault_at(
            0,
            RequestFault::Panic {
                iteration: 0,
                chunk: 0,
            },
        ));
        let eng = chain_engine(EngineConfig {
            threads: 2,
            permits: 1,
            heavy_permits: 1,
        })
        .with_chaos(plan);
        let err = eng
            .bfs(0, RunBudget::unlimited())
            .expect_err("injected panic must surface");
        assert_eq!(err.kind(), "worker-panic");
        let health = eng.health();
        assert_eq!(health.quarantined_slots, 1, "slot parked in quarantine");
        assert_eq!(health.quarantined_total, 1);
        assert_eq!(
            health.free_slots + health.leased_slots + health.quarantined_slots,
            health.permits,
            "no slot leaked"
        );
        // The only slot is quarantined, yet the next request is admitted,
        // claims it, and runs on a rebuilt scratch: capacity recovered.
        let ok = eng
            .bfs(0, RunBudget::unlimited())
            .expect("engine recovers by rebuilding the slot");
        assert_eq!(ok.level[3], 3);
        let health = eng.health();
        assert_eq!(health.rebuilt_total, 1);
        assert_eq!(health.quarantined_slots, 0);
        assert_eq!(health.free_slots, 1);
    }

    #[test]
    fn chaos_budget_exhaust_and_delay_fault_paths_stay_typed() {
        let plan = Arc::new(
            RequestFaultPlan::new()
                .fault_at(0, RequestFault::BudgetExhaust)
                .fault_at(1, RequestFault::Delay { micros: 100 }),
        );
        let eng = chain_engine(EngineConfig::default()).with_chaos(plan);
        let err = eng
            .pagerank(PrConfig::default(), RunBudget::unlimited())
            .expect_err("exhausted budget must fail typed");
        assert_eq!(err.kind(), "iteration-cap");
        // The delayed request still completes correctly.
        let ok = eng.bfs(0, RunBudget::unlimited()).expect("delayed bfs");
        assert_eq!(ok.level[3], 3);
        let health = eng.health();
        assert_eq!(health.quarantined_slots, 0);
        assert_eq!(health.free_slots, health.permits);
    }

    #[test]
    fn poisoned_recycle_lock_clears_the_stash_and_recycling_resumes() {
        let eng = chain_engine(EngineConfig::default());
        let b = eng
            .bfs_batch(&[0], RunBudget::unlimited())
            .expect("warm-up batch");
        eng.recycle_batch(b);
        // Poison the free-list lock with a stashed buffer inside.
        eng.poison_recycled();
        // The stash-clearing unpoison discards the suspect contents...
        let b = eng
            .bfs_batch(&[0], RunBudget::unlimited())
            .expect("bfs_batch after poison");
        assert_eq!(b.source_levels(0)[3], 3);
        // ...and recycling works normally again afterwards.
        let ptr = b.levels.as_ptr();
        eng.recycle_batch(b);
        let b2 = eng
            .bfs_batch(&[0], RunBudget::unlimited())
            .expect("recycling resumed");
        assert_eq!(b2.levels.as_ptr(), ptr, "post-poison stash works");
    }

    #[test]
    fn hits_serves_on_heavy_class_with_csc() {
        let g = Graph::from_coo(&Coo::<()>::from_edges(
            5,
            [(0, 1, ()), (1, 2, ()), (2, 3, ())],
        ))
        .with_csc();
        let eng = Engine::new(Arc::new(g), EngineConfig::default());
        let r = eng
            .hits(HitsConfig::default(), RunBudget::unlimited())
            .expect("hits");
        assert_eq!(r.hub.len(), 5);
        assert_eq!(r.authority.len(), 5);
    }
}
