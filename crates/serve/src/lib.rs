//! # essentials-serve — the concurrent query-serving engine
//!
//! Everything below this crate computes *one* traversal well; this crate
//! serves *many at once*. A long-lived [`Engine`] holds one immutable
//! `Arc<Graph>`, one shared thread pool, a **keyed scratch pool** (one
//! [`essentials_core::ScratchSlot`] per in-flight request, leased by CAS
//! checkout), and a **two-class fair admission gate** (bounded in-flight
//! permits, FIFO within class, light probes never starved behind
//! cap-blocked heavy analytics).
//!
//! The throughput lever is [`Engine::bfs_batch`]: multi-source batched BFS
//! packs up to 64 traversals into one graph pass with a `u64` mask word
//! per vertex (`essentials_algos::multi_source`), so a serving workload of
//! many reachability probes costs ~one traversal per 64 queries instead of
//! one each.
//!
//! Serving semantics — deadlines spanning queue *and* run, cancellation,
//! determinism per request, and the zero-steady-state-allocation contract
//! — are specified in DESIGN.md §13 and enforced by
//! `tests/serve_concurrency.rs` and `tests/zero_alloc.rs`.
//!
//! Overload resilience — deadline-feasibility shedding, degraded-mode
//! (brownout) results, scratch quarantine after captured panics, and
//! request-keyed chaos injection — is specified in DESIGN.md §16 and
//! exercised by `tests/chaos.rs` plus the bench harness `chaos`
//! experiment.

pub mod admission;
pub mod engine;
pub mod pool;

pub use admission::{Admission, AdmissionError, Class, Permit};
pub use engine::{Brownout, Engine, EngineConfig, EngineHealth, Outcome, Response, ServeError};
pub use pool::{PoolCounts, ScratchLease, ScratchPool};
