//! Two-class fair admission control: bounded in-flight permits with a FIFO
//! wait queue and a separate cap on the heavy class.
//!
//! The serving workload mixes cheap probes (single/batched BFS — the
//! *light* class) with expensive analytics (PageRank — the *heavy* class).
//! A single shared permit count would let a burst of heavies occupy every
//! permit and push probe latency from microseconds to seconds, so the
//! queue enforces two rules:
//!
//! 1. **Bounded concurrency** — at most `total` requests run at once
//!    (matched to the scratch-pool slot count, so every admitted request
//!    gets warm scratch).
//! 2. **Class fairness** — at most `heavy_cap < total` of them are heavy.
//!    Within a class admission is strict FIFO; across classes the oldest
//!    waiter that its class cap *allows* goes first, so lights overtake
//!    only cap-blocked heavies (lights never starve behind a heavy
//!    backlog) while a waiting heavy still holds its place for the next
//!    permit its cap allows (heavies never starve behind a light flood
//!    of later arrivals).
//!
//! The queue honors each request's [`RunBudget`] wall-clock deadline: a
//! request still waiting at its deadline gives up its place and fails with
//! [`AdmissionError::QueueDeadline`] — the same deadline the operators
//! would enforce mid-run, applied to the wait as well. A cancelled token
//! is observed at the polling granularity (`CANCEL_POLL`).
//!
//! Plain `std` mutex + condvar: admission runs once per *request*, three
//! to six orders of magnitude rarer than the per-edge hot paths, so
//! contention here is irrelevant next to correctness and debuggability.
//! Lock poisoning is deliberately forgiven (`relock`): the state is a pair
//! of counters plus a queue of copyable tickets, consistent at every await
//! point, and a panicking *worker* must not wedge admissions forever.

use essentials_parallel::CancelToken;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How often a queued request re-checks its cancellation token while
/// blocked on the condvar.
const CANCEL_POLL: Duration = Duration::from_millis(10);

/// Admission class of a request (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Cheap, latency-sensitive probes (BFS, batched BFS, reachability).
    Light,
    /// Expensive, throughput-oriented analytics (PageRank and friends).
    Heavy,
}

impl Class {
    /// Stable lowercase label for observability rows.
    pub fn name(self) -> &'static str {
        match self {
            Class::Light => "light",
            Class::Heavy => "heavy",
        }
    }
}

/// Why a request was never admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The request's deadline expired while it was still queued.
    QueueDeadline,
    /// The request's cancellation token fired while it was still queued.
    Cancelled,
    /// The deadline-feasibility gate predicted, at arrival, that the
    /// request could not finish before its deadline given the current
    /// backlog, and rejected it without queueing (DESIGN.md §16). Raised
    /// by the serving engine, not the gate itself — the gate only defines
    /// the rejection vocabulary.
    Shed,
}

impl AdmissionError {
    /// Stable label (matches the [`essentials_parallel::BudgetReason`]
    /// vocabulary where the concepts overlap).
    pub fn kind(self) -> &'static str {
        match self {
            AdmissionError::QueueDeadline => "queue-deadline",
            AdmissionError::Cancelled => "cancelled",
            AdmissionError::Shed => "shed",
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueDeadline => {
                write!(f, "deadline expired while queued for admission")
            }
            AdmissionError::Cancelled => write!(f, "cancelled while queued for admission"),
            AdmissionError::Shed => {
                write!(f, "shed on arrival: predicted to miss its deadline")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Mutable admission state, guarded by the mutex.
struct State {
    in_flight: usize,
    heavy_in_flight: usize,
    next_ticket: u64,
    /// Waiting requests in arrival (= ticket) order. Entries are removed
    /// from anywhere (admission from the front region, deadline expiry
    /// from wherever the loser sits), which keeps the remainder sorted.
    queue: VecDeque<(u64, Class)>,
}

/// The admission gate (see module docs).
pub struct Admission {
    total: usize,
    heavy_cap: usize,
    state: Mutex<State>,
    cv: Condvar,
}

/// An admitted request's permit; released on drop.
pub struct Permit<'a> {
    adm: &'a Admission,
    class: Class,
}

impl Permit<'_> {
    /// The admitted class.
    pub fn class(&self) -> Class {
        self.class
    }
}

impl fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit")
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.adm.release(self.class);
    }
}

impl Admission {
    /// A gate with `total` permits, at most `heavy_cap` of them held by
    /// heavy requests at once. `heavy_cap` is clamped into
    /// `1..=total` — zero would deadlock every heavy forever, and more
    /// than `total` is meaningless.
    pub fn new(total: usize, heavy_cap: usize) -> Self {
        assert!(total > 0, "admission needs at least one permit");
        Admission {
            total,
            heavy_cap: heavy_cap.clamp(1, total),
            state: Mutex::new(State {
                in_flight: 0,
                heavy_in_flight: 0,
                next_ticket: 0,
                queue: VecDeque::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Total permit count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Heavy-class cap.
    pub fn heavy_cap(&self) -> usize {
        self.heavy_cap
    }

    /// Snapshot of `(in_flight, heavy_in_flight, queued)` for tests and
    /// telemetry.
    pub fn snapshot(&self) -> (usize, usize, usize) {
        let st = relock(self.state.lock());
        (st.in_flight, st.heavy_in_flight, st.queue.len())
    }

    /// Blocks until admitted, the deadline expires, or the token cancels.
    /// FIFO within class; across classes see the module-level fairness
    /// rules.
    pub fn acquire(
        &self,
        class: Class,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
    ) -> Result<Permit<'_>, AdmissionError> {
        let mut st = relock(self.state.lock());
        // Fast path: nobody queued and the caps admit us right now.
        if st.queue.is_empty() && self.fits(&st, class) {
            grant(&mut st, class);
            return Ok(Permit { adm: self, class });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back((ticket, class));
        loop {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    remove_ticket(&mut st, ticket);
                    drop(st);
                    // Our departure may unblock a younger waiter.
                    self.cv.notify_all();
                    return Err(AdmissionError::Cancelled);
                }
            }
            if self.my_turn(&st, ticket, class) {
                remove_ticket(&mut st, ticket);
                grant(&mut st, class);
                drop(st);
                self.cv.notify_all();
                return Ok(Permit { adm: self, class });
            }
            let now = Instant::now();
            if let Some(d) = deadline {
                if now >= d {
                    remove_ticket(&mut st, ticket);
                    drop(st);
                    self.cv.notify_all();
                    return Err(AdmissionError::QueueDeadline);
                }
            }
            // Sleep until something changes. With a deadline or a cancel
            // token the sleep is bounded so the limit is observed; spurious
            // wakeups just re-run the checks above.
            st = match (deadline, cancel.is_some()) {
                (None, false) => relock(self.cv.wait(st)),
                (d, polled) => {
                    let mut dur = d.map_or(Duration::MAX, |d| d.saturating_duration_since(now));
                    if polled {
                        dur = dur.min(CANCEL_POLL);
                    }
                    match self.cv.wait_timeout(st, dur) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    }
                }
            };
        }
    }

    /// Whether the caps alone admit a `class` request right now.
    fn fits(&self, st: &State, class: Class) -> bool {
        st.in_flight < self.total && (class != Class::Heavy || st.heavy_in_flight < self.heavy_cap)
    }

    /// Whether `ticket` is the oldest waiter its class cap allows: every
    /// older waiter must be a heavy currently blocked by the heavy cap
    /// (the only overtakable state).
    fn my_turn(&self, st: &State, ticket: u64, class: Class) -> bool {
        if !self.fits(st, class) {
            return false;
        }
        for &(t, c) in &st.queue {
            if t == ticket {
                return true;
            }
            let overtakable = c == Class::Heavy && st.heavy_in_flight >= self.heavy_cap;
            if !overtakable {
                return false;
            }
        }
        // Unreachable: our ticket is always in the queue while we wait.
        false
    }

    /// Returns a permit (called from [`Permit::drop`]).
    fn release(&self, class: Class) {
        let mut st = relock(self.state.lock());
        st.in_flight -= 1;
        if class == Class::Heavy {
            st.heavy_in_flight -= 1;
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Books a grant into the state (caller already verified the caps).
fn grant(st: &mut State, class: Class) {
    st.in_flight += 1;
    if class == Class::Heavy {
        st.heavy_in_flight += 1;
    }
}

/// Drops `ticket` from wherever it sits in the queue.
fn remove_ticket(st: &mut State, ticket: u64) {
    if let Some(i) = st.queue.iter().position(|&(t, _)| t == ticket) {
        st.queue.remove(i);
    }
}

/// Forgives lock poisoning (see module docs for why that is sound here).
fn relock<'a>(
    r: Result<MutexGuard<'a, State>, std::sync::PoisonError<MutexGuard<'a, State>>>,
) -> MutexGuard<'a, State> {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn caps_are_enforced_and_released() {
        let adm = Admission::new(2, 1);
        let a = adm.acquire(Class::Heavy, None, None).expect("heavy 1");
        assert_eq!(adm.snapshot(), (1, 1, 0));
        let b = adm.acquire(Class::Light, None, None).expect("light");
        assert_eq!(adm.snapshot(), (2, 1, 0));
        drop(a);
        drop(b);
        assert_eq!(adm.snapshot(), (0, 0, 0));
    }

    #[test]
    fn queue_deadline_fires_for_a_blocked_request() {
        let adm = Admission::new(1, 1);
        let hold = adm.acquire(Class::Light, None, None).expect("holder");
        let err = adm
            .acquire(
                Class::Light,
                Some(Instant::now() + Duration::from_millis(30)),
                None,
            )
            .expect_err("must time out in queue");
        assert_eq!(err, AdmissionError::QueueDeadline);
        assert_eq!(adm.snapshot(), (1, 0, 0), "loser left the queue");
        drop(hold);
    }

    #[test]
    fn cancel_token_unblocks_a_queued_request() {
        let adm = Arc::new(Admission::new(1, 1));
        let hold = adm.acquire(Class::Light, None, None).expect("holder");
        let token = CancelToken::new();
        let t2 = token.clone();
        let a2 = adm.clone();
        let waiter = std::thread::spawn(move || a2.acquire(Class::Light, None, Some(&t2)).err());
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        assert_eq!(
            waiter.join().expect("no panic"),
            Some(AdmissionError::Cancelled)
        );
        drop(hold);
    }

    #[test]
    fn cancelling_a_parked_waiter_unblocks_promptly_and_leaves_no_fifo_hole() {
        // The race under test: the token fires while the waiter is parked
        // *inside* the condvar wait (not on the pre-wait check). The
        // bounded CANCEL_POLL sleep must observe it promptly, and the
        // departing waiter must remove its own ticket so the waiter queued
        // behind it is not stranded behind a ghost entry.
        let adm = Arc::new(Admission::new(1, 1));
        let hold = adm.acquire(Class::Light, None, None).expect("holder");
        // Waiter A: queued first, no cancel token, will eventually win.
        let a_adm = adm.clone();
        let waiter_a =
            std::thread::spawn(move || a_adm.acquire(Class::Light, None, None).map(drop).is_ok());
        while adm.snapshot().2 < 1 {
            std::thread::yield_now();
        }
        // Waiter B: queued behind A with a cancel token.
        let token = CancelToken::new();
        let t2 = token.clone();
        let b_adm = adm.clone();
        let waiter_b =
            std::thread::spawn(move || b_adm.acquire(Class::Light, None, Some(&t2)).err());
        while adm.snapshot().2 < 2 {
            std::thread::yield_now();
        }
        // Give B time to park in the condvar wait, then cancel.
        std::thread::sleep(Duration::from_millis(30));
        let fired = Instant::now();
        token.cancel();
        assert_eq!(
            waiter_b.join().expect("no panic"),
            Some(AdmissionError::Cancelled)
        );
        assert!(
            fired.elapsed() < Duration::from_millis(500),
            "cancellation must unblock within the polling bound, took {:?}",
            fired.elapsed()
        );
        // B's ticket is gone (no FIFO hole): only A still waits...
        assert_eq!(adm.snapshot(), (1, 0, 1), "cancelled ticket released");
        // ...and releasing the holder admits A normally.
        drop(hold);
        assert!(
            waiter_a.join().expect("no panic"),
            "A admitted after B left"
        );
        assert_eq!(adm.snapshot(), (0, 0, 0));
    }

    #[test]
    fn lights_overtake_cap_blocked_heavies_but_heavies_keep_their_place() {
        let adm = Arc::new(Admission::new(2, 1));
        let heavy_running = adm.acquire(Class::Heavy, None, None).expect("heavy runs");
        let order = Arc::new(AtomicUsize::new(0));

        // A heavy queued behind the cap...
        let (a2, o2) = (adm.clone(), order.clone());
        let queued_heavy = std::thread::spawn(move || {
            let p = a2.acquire(Class::Heavy, None, None).expect("eventually");
            let at = o2.fetch_add(1, Ordering::Relaxed);
            drop(p);
            at
        });
        while adm.snapshot().2 < 1 {
            std::thread::yield_now();
        }
        // ...must not block a later light while the cap is the only
        // obstacle.
        let (a3, o3) = (adm.clone(), order.clone());
        let light = std::thread::spawn(move || {
            let p = a3.acquire(Class::Light, None, None).expect("immediately");
            let at = o3.fetch_add(1, Ordering::Relaxed);
            drop(p);
            at
        });
        let light_at = light.join().expect("light runs while heavy is capped");
        assert_eq!(light_at, 0, "light admitted before the queued heavy");
        // Freeing the running heavy lets the queued heavy through.
        drop(heavy_running);
        let heavy_at = queued_heavy.join().expect("heavy eventually admitted");
        assert_eq!(heavy_at, 1);
        assert_eq!(adm.snapshot(), (0, 0, 0));
    }
}
