//! The keyed scratch pool: N independent [`ScratchSlot`]s behind a
//! lock-free checkout protocol, with panic quarantine.
//!
//! A single `Context` owns a single scratch slot — perfect for one
//! algorithm at a time, but a serving engine runs N requests concurrently,
//! and two requests rotating through *one* slot would constantly miss the
//! swap and fall back to fresh allocations (the slot's documented
//! contended-loser policy). The pool fixes the steady state: each admitted
//! request leases a whole slot by key, so its take/put pairs always hit
//! the scratch it warmed up on previous requests, and the zero-allocation
//! contract of the frontier pipeline extends to concurrent serving
//! (`tests/zero_alloc.rs`, `tests/serve_concurrency.rs`).
//!
//! Checkout is a CAS scan over per-slot state words — no waiting, no
//! allocation on the warm path, O(slots) worst case with slots sized to
//! the admission permit count (a handful). The engine admits at most
//! `slots` requests, so an admitted request always finds a claimable slot.
//!
//! ## Quarantine (DESIGN.md §16)
//!
//! A slot is a three-state machine: `FREE → LEASED` on checkout (CAS,
//! Acquire), `LEASED → FREE` on lease drop (store, Release), and
//! `LEASED → QUARANTINED` when the engine's `catch_unwind` captured a
//! panic while the lease was held ([`ScratchLease::quarantine`]). A
//! quarantined slot's scratch may hold buffers a panicking chunk left
//! half-written, so it is never CAS-returned to the free set. It still
//! *counts* toward capacity: checkout claims quarantined slots as a second
//! choice (`QUARANTINED → LEASED`, Acquire) and rebuilds the scratch
//! fresh before handing it out — lazy replacement, paid only when an
//! admitted request actually needs the capacity. The invariant
//! `free + leased + quarantined == permits` therefore holds at every
//! instant (each slot is in exactly one state), which is how the chaos
//! soak proves zero slot leaks.
//!
//! The scratch handle itself sits behind a tiny per-slot mutex. It is
//! *uncontended by construction* — only the CAS winner for a slot touches
//! its handle — so the lock is a formality that buys safe interior
//! mutability for the cold rebuild path without `unsafe`.

use essentials_core::ScratchSlot;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Slot states (the values of [`PoolSlot::state`]).
const FREE: u8 = 0;
const LEASED: u8 = 1;
const QUARANTINED: u8 = 2;

/// One slot of the pool: the scratch handle plus its state word.
struct PoolSlot {
    /// Claimed by `compare_exchange(FREE → LEASED, Acquire)`; released by
    /// a `store(FREE, Release)` in [`ScratchLease::drop`]. The pair makes
    /// every scratch write of the previous leaseholder visible to the
    /// next. Quarantine stores `QUARANTINED` with Release; the rebuild CAS
    /// (`QUARANTINED → LEASED`, Acquire) pairs with it.
    state: AtomicU8,
    /// The scratch handle. Locked only by the CAS winner of this slot
    /// (checkout clone, quarantine-rebuild replacement), so the mutex is
    /// never contended; see module docs.
    scratch: Mutex<Arc<ScratchSlot>>,
}

/// Live + cumulative pool occupancy, from one pass over the slot states.
/// Each slot is in exactly one state per load, so
/// `free + leased + quarantined` always equals the slot count — the
/// zero-leak invariant the chaos soak asserts at every sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCounts {
    /// Slots currently free.
    pub free: usize,
    /// Slots currently leased to a request.
    pub leased: usize,
    /// Slots currently quarantined (awaiting lazy rebuild).
    pub quarantined: usize,
}

/// Fixed-size pool of scratch slots, checked out one whole slot per
/// request (see module docs).
pub struct ScratchPool {
    slots: Box<[PoolSlot]>,
    /// Cumulative count of quarantine events (diagnostic; the live count
    /// comes from the slot states).
    quarantined_ever: AtomicU64,
    /// Cumulative count of lazy rebuilds of quarantined slots.
    rebuilt_ever: AtomicU64,
}

impl ScratchPool {
    /// A pool of `slots` independent scratch slots. Each starts empty and
    /// warms up lazily on its first request.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a scratch pool needs at least one slot");
        ScratchPool {
            slots: (0..slots)
                .map(|_| PoolSlot {
                    state: AtomicU8::new(FREE),
                    scratch: Mutex::new(Arc::new(ScratchSlot::new())), // alloc-ok: cold constructor
                })
                .collect(), // alloc-ok: cold constructor, one boxed slice for the engine's lifetime
            quarantined_ever: AtomicU64::new(0),
            rebuilt_ever: AtomicU64::new(0),
        }
    }

    /// Number of slots (the engine's admission permit count).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has no slots (never true — the constructor
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently free slots (advisory snapshot; racy by nature).
    pub fn available(&self) -> usize {
        self.counts().free
    }

    /// Occupancy snapshot: one relaxed load per slot, each slot observed
    /// in exactly one state, so the three counts always sum to
    /// [`ScratchPool::len`].
    pub fn counts(&self) -> PoolCounts {
        let mut c = PoolCounts {
            free: 0,
            leased: 0,
            quarantined: 0,
        };
        for slot in self.slots.iter() {
            match slot.state.load(Ordering::Relaxed) {
                FREE => c.free += 1,
                LEASED => c.leased += 1,
                _ => c.quarantined += 1,
            }
        }
        c
    }

    /// Cumulative quarantine events over the pool's lifetime.
    pub fn quarantined_ever(&self) -> u64 {
        self.quarantined_ever.load(Ordering::Relaxed)
    }

    /// Cumulative lazy rebuilds of quarantined slots.
    pub fn rebuilt_ever(&self) -> u64 {
        self.rebuilt_ever.load(Ordering::Relaxed)
    }

    /// Claims a slot, or `None` when every slot is leased. Free slots are
    /// preferred (one successful CAS, no allocation — the warm path);
    /// quarantined slots are claimed second choice and their scratch is
    /// rebuilt fresh first (the lazy-recovery path, which allocates — an
    /// accepted cost of surviving a panic). The admission layer guarantees
    /// a claimable slot for every admitted request, so `None` here means
    /// the caller bypassed admission.
    pub fn checkout(&self) -> Option<ScratchLease<'_>> {
        for (key, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(FREE, LEASED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                let scratch = Arc::clone(&lock_handle(&slot.scratch)); // alloc-ok: Arc handle copy, refcount bump only
                return Some(ScratchLease {
                    pool: self,
                    key,
                    scratch,
                    quarantine: false,
                });
            }
        }
        for (key, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(QUARANTINED, LEASED, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // We own the slot now: replace the possibly-inconsistent
                // scratch with a fresh one before anyone runs on it.
                let fresh = Arc::new(ScratchSlot::new());
                *lock_handle(&slot.scratch) = Arc::clone(&fresh); // alloc-ok: Arc handle copy on the cold rebuild path
                self.rebuilt_ever.fetch_add(1, Ordering::Relaxed);
                return Some(ScratchLease {
                    pool: self,
                    key,
                    scratch: fresh,
                    quarantine: false,
                });
            }
        }
        None
    }
}

/// Locks a slot's scratch handle, forgiving poison: the handle is a single
/// `Arc` pointer, swapped or cloned atomically under the lock with no
/// intermediate states, so a panicking holder cannot leave it torn.
fn lock_handle(m: &Mutex<Arc<ScratchSlot>>) -> MutexGuard<'_, Arc<ScratchSlot>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Exclusive lease on one pool slot; returns the slot on drop, or parks it
/// in quarantine via [`ScratchLease::quarantine`]. The key identifies the
/// slot for observability (cross-request aliasing shows up as two live
/// leases with one key — impossible by the CAS protocol, and asserted by
/// the concurrency stress test).
pub struct ScratchLease<'a> {
    pool: &'a ScratchPool,
    key: usize,
    scratch: Arc<ScratchSlot>,
    quarantine: bool,
}

impl ScratchLease<'_> {
    /// The leased slot's key (stable for the pool's lifetime).
    pub fn key(&self) -> usize {
        self.key
    }

    /// The leased scratch slot, to thread into a request-scoped
    /// [`essentials_core::Context::with_parts`].
    pub fn scratch(&self) -> &Arc<ScratchSlot> {
        &self.scratch
    }

    /// Consumes the lease, parking the slot in quarantine instead of
    /// returning it to the free set. Call when a panic was captured while
    /// this lease was held: the scratch may hold half-written buffers, so
    /// the next checkout of this slot rebuilds it fresh (see module docs).
    pub fn quarantine(mut self) {
        self.quarantine = true;
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if self.quarantine {
            // Release pairs with the rebuild CAS in `checkout`; the slot
            // never re-enters the free set with its current scratch.
            self.pool.quarantined_ever.fetch_add(1, Ordering::Relaxed);
            self.pool.slots[self.key]
                .state
                .store(QUARANTINED, Ordering::Release);
        } else {
            // Release pairs with the Acquire CAS in `checkout`: the next
            // leaseholder of this key sees every write this request parked
            // in the scratch.
            self.pool.slots[self.key]
                .state
                .store(FREE, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_exhausts_and_release_restores() {
        let pool = ScratchPool::new(2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.available(), 2);
        let a = pool.checkout().expect("slot 0");
        let b = pool.checkout().expect("slot 1");
        assert_ne!(a.key(), b.key());
        assert!(pool.checkout().is_none(), "pool must be exhausted");
        assert_eq!(pool.available(), 0);
        drop(a);
        let c = pool.checkout().expect("released slot comes back");
        assert_eq!(c.key(), 0, "first free key is reclaimed");
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn leased_scratch_is_slot_stable() {
        use essentials_core::Context;
        use essentials_parallel::ThreadPool;

        let pool = ScratchPool::new(1);
        let tp = Arc::new(ThreadPool::new(1));
        let first = {
            let lease = pool.checkout().expect("slot");
            let ctx = Context::with_parts(tp.clone(), lease.scratch().clone());
            let mut v = ctx.take_f64_buffer();
            v.reserve(777);
            let addr = v.as_ptr() as usize;
            ctx.recycle_f64_buffer(v);
            addr
        };
        let lease = pool.checkout().expect("slot again");
        let ctx = Context::with_parts(tp, lease.scratch().clone());
        let v = ctx.take_f64_buffer();
        assert_eq!(
            v.as_ptr() as usize,
            first,
            "same key, same warmed scratch allocation"
        );
        ctx.recycle_f64_buffer(v);
    }

    #[test]
    fn quarantine_removes_the_slot_from_the_free_set_but_not_from_capacity() {
        let pool = ScratchPool::new(2);
        let lease = pool.checkout().expect("slot");
        let key = lease.key();
        lease.quarantine();
        assert_eq!(
            pool.counts(),
            PoolCounts {
                free: 1,
                leased: 0,
                quarantined: 1
            }
        );
        assert_eq!(pool.quarantined_ever(), 1);
        assert_eq!(pool.rebuilt_ever(), 0);
        // Both remaining capacity units are still claimable: the free slot
        // first, then the quarantined one (rebuilt on claim).
        let a = pool.checkout().expect("free slot preferred");
        assert_ne!(a.key(), key);
        let b = pool.checkout().expect("quarantined slot rebuilt lazily");
        assert_eq!(b.key(), key);
        assert_eq!(pool.rebuilt_ever(), 1);
        assert_eq!(
            pool.counts(),
            PoolCounts {
                free: 0,
                leased: 2,
                quarantined: 0
            }
        );
        drop(a);
        drop(b);
        assert_eq!(pool.available(), 2, "rebuilt slot returns to the free set");
    }

    #[test]
    fn quarantined_scratch_is_replaced_not_reused() {
        use essentials_core::Context;
        use essentials_parallel::ThreadPool;

        let pool = ScratchPool::new(1);
        let tp = Arc::new(ThreadPool::new(1));
        let lease = pool.checkout().expect("slot");
        // Hold the quarantined scratch alive so its warmed buffer address
        // cannot be recycled by the allocator for the rebuilt one.
        let old = lease.scratch().clone();
        let warmed = {
            let ctx = Context::with_parts(tp.clone(), old.clone());
            let mut v = ctx.take_f64_buffer();
            v.reserve(777);
            let addr = v.as_ptr() as usize;
            ctx.recycle_f64_buffer(v);
            addr
        };
        lease.quarantine();
        // The rebuilt slot must not hand back the possibly-inconsistent
        // warmed scratch — it is a fresh ScratchSlot with fresh buffers.
        let lease = pool.checkout().expect("rebuilt slot");
        assert!(
            !Arc::ptr_eq(lease.scratch(), &old),
            "quarantined scratch must be replaced, not reused"
        );
        let ctx = Context::with_parts(tp, lease.scratch().clone());
        let mut v = ctx.take_f64_buffer();
        v.reserve(777);
        assert_ne!(
            v.as_ptr() as usize,
            warmed,
            "rebuilt scratch must not alias the quarantined buffers"
        );
        ctx.recycle_f64_buffer(v);
        assert_eq!(pool.quarantined_ever(), 1);
        assert_eq!(pool.rebuilt_ever(), 1);
    }

    #[test]
    fn counts_always_sum_to_capacity() {
        let pool = ScratchPool::new(3);
        let a = pool.checkout().expect("a");
        let b = pool.checkout().expect("b");
        b.quarantine();
        let c = pool.counts();
        assert_eq!(c.free + c.leased + c.quarantined, 3);
        assert_eq!(
            c,
            PoolCounts {
                free: 1,
                leased: 1,
                quarantined: 1
            }
        );
        drop(a);
        let c = pool.counts();
        assert_eq!(c.free + c.leased + c.quarantined, 3);
    }
}
