//! The keyed scratch pool: N independent [`ScratchSlot`]s behind a
//! lock-free checkout protocol.
//!
//! A single `Context` owns a single scratch slot — perfect for one
//! algorithm at a time, but a serving engine runs N requests concurrently,
//! and two requests rotating through *one* slot would constantly miss the
//! swap and fall back to fresh allocations (the slot's documented
//! contended-loser policy). The pool fixes the steady state: each admitted
//! request leases a whole slot by key, so its take/put pairs always hit
//! the scratch it warmed up on previous requests, and the zero-allocation
//! contract of the frontier pipeline extends to concurrent serving
//! (`tests/zero_alloc.rs`, `tests/serve_concurrency.rs`).
//!
//! Checkout is a CAS scan over per-slot `in_use` flags — no locks, no
//! allocation, O(slots) worst case with slots sized to the admission
//! permit count (a handful). The engine admits at most `slots` requests,
//! so an admitted request always finds a free slot.

use essentials_core::ScratchSlot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One slot of the pool: the scratch plus its checkout flag.
struct PoolSlot {
    /// Claimed by `compare_exchange(false → true, Acquire)`; released by a
    /// `store(false, Release)` in [`ScratchLease::drop`]. The pair makes
    /// every scratch write of the previous leaseholder visible to the
    /// next.
    in_use: AtomicBool,
    scratch: Arc<ScratchSlot>,
}

/// Fixed-size pool of scratch slots, checked out one whole slot per
/// request (see module docs).
pub struct ScratchPool {
    slots: Box<[PoolSlot]>,
}

impl ScratchPool {
    /// A pool of `slots` independent scratch slots. Each starts empty and
    /// warms up lazily on its first request.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "a scratch pool needs at least one slot");
        ScratchPool {
            slots: (0..slots)
                .map(|_| PoolSlot {
                    in_use: AtomicBool::new(false),
                    scratch: Arc::new(ScratchSlot::new()), // alloc-ok: cold constructor
                })
                .collect(), // alloc-ok: cold constructor, one boxed slice for the engine's lifetime
        }
    }

    /// Number of slots (the engine's admission permit count).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has no slots (never true — the constructor
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently free slots (advisory snapshot; racy by nature).
    pub fn available(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.in_use.load(Ordering::Relaxed))
            .count()
    }

    /// Claims the first free slot, or `None` when every slot is leased.
    /// Lock-free: one successful CAS, no allocation, no waiting — the
    /// admission layer guarantees a free slot for every admitted request,
    /// so `None` here means the caller bypassed admission.
    pub fn checkout(&self) -> Option<ScratchLease<'_>> {
        for (key, slot) in self.slots.iter().enumerate() {
            if slot
                .in_use
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(ScratchLease { pool: self, key });
            }
        }
        None
    }
}

/// Exclusive lease on one pool slot; returns the slot on drop. The key
/// identifies the slot for observability (cross-request aliasing shows up
/// as two live leases with one key — impossible by the CAS protocol, and
/// asserted by the concurrency stress test).
pub struct ScratchLease<'a> {
    pool: &'a ScratchPool,
    key: usize,
}

impl ScratchLease<'_> {
    /// The leased slot's key (stable for the pool's lifetime).
    pub fn key(&self) -> usize {
        self.key
    }

    /// The leased scratch slot, to thread into a request-scoped
    /// [`essentials_core::Context::with_parts`].
    pub fn scratch(&self) -> &Arc<ScratchSlot> {
        &self.pool.slots[self.key].scratch
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        // Release pairs with the Acquire CAS in `checkout`: the next
        // leaseholder of this key sees every write this request parked in
        // the scratch.
        self.pool.slots[self.key]
            .in_use
            .store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_exhausts_and_release_restores() {
        let pool = ScratchPool::new(2);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.available(), 2);
        let a = pool.checkout().expect("slot 0");
        let b = pool.checkout().expect("slot 1");
        assert_ne!(a.key(), b.key());
        assert!(pool.checkout().is_none(), "pool must be exhausted");
        assert_eq!(pool.available(), 0);
        drop(a);
        let c = pool.checkout().expect("released slot comes back");
        assert_eq!(c.key(), 0, "first free key is reclaimed");
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn leased_scratch_is_slot_stable() {
        use essentials_core::Context;
        use essentials_parallel::ThreadPool;

        let pool = ScratchPool::new(1);
        let tp = Arc::new(ThreadPool::new(1));
        let first = {
            let lease = pool.checkout().expect("slot");
            let ctx = Context::with_parts(tp.clone(), lease.scratch().clone());
            let mut v = ctx.take_f64_buffer();
            v.reserve(777);
            let addr = v.as_ptr() as usize;
            ctx.recycle_f64_buffer(v);
            addr
        };
        let lease = pool.checkout().expect("slot again");
        let ctx = Context::with_parts(tp, lease.scratch().clone());
        let v = ctx.take_f64_buffer();
        assert_eq!(
            v.as_ptr() as usize,
            first,
            "same key, same warmed scratch allocation"
        );
        ctx.recycle_f64_buffer(v);
    }
}
