//! `essentials` — the command-line front end.
//!
//! ```text
//! essentials generate <family> <args..> -o graph.mtx     synthesize a graph
//! essentials stats <file>                                structural summary
//! essentials convert <in> <out>                          mtx/txt/esnt by extension
//! essentials bfs|sssp|pagerank|cc|tc <file> [opts]       run analytics
//! essentials partition <file> -k <parts>                 multilevel partition
//! ```
//!
//! Formats are chosen by extension: `.mtx` (MatrixMarket), `.txt`/`.el`
//! (edge list), `.esnt` (binary snapshot). Argument parsing is deliberately
//! dependency-free.

use std::io::BufReader;
use std::process::ExitCode;

use essentials::prelude::*;
use essentials_algos::{bfs, cc, pagerank, sssp, tc};
use essentials_gen as gen;
use essentials_io as eio;
use essentials_partition::{balance, edge_cut, multilevel_partition, MultilevelConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  essentials generate <rmat|grid|gnm|ws|ba> <params..> -o <file> [--seed N] [--weights LO..HI]
      rmat <scale> <edge_factor> | grid <rows> <cols> | gnm <n> <m>
      ws <n> <k> <beta>          | ba <n> <m>
  essentials stats <file>
  essentials convert <in> <out>
  essentials bfs <file> [--source V]
  essentials sssp <file> [--source V] [--mode bsp|async|delta]
  essentials pagerank <file> [--iters N]
  essentials cc <file>
  essentials tc <file>
  essentials partition <file> -k <parts>";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => generate(rest),
        "stats" => stats(rest),
        "convert" => convert(rest),
        "bfs" => run_bfs(rest),
        "sssp" => run_sssp(rest),
        "pagerank" => run_pagerank(rest),
        "cc" => run_cc(rest),
        "tc" => run_tc(rest),
        "partition" => run_partition(rest),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Fetches `--flag value` from an argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: '{s}'"))
}

fn load(path: &str) -> Result<Coo<f32>, String> {
    let err = |e: String| format!("reading {path}: {e}");
    if path.ends_with(".mtx") {
        let f = std::fs::File::open(path).map_err(|e| err(e.to_string()))?;
        Ok(eio::read_matrix_market(BufReader::new(f))
            .map_err(|e| err(e.to_string()))?
            .0)
    } else if path.ends_with(".esnt") {
        let bytes = std::fs::read(path).map_err(|e| err(e.to_string()))?;
        Ok(eio::read_binary(&bytes)
            .map_err(|e| err(e.to_string()))?
            .to_coo())
    } else {
        let f = std::fs::File::open(path).map_err(|e| err(e.to_string()))?;
        eio::read_edge_list(BufReader::new(f), 0).map_err(|e| err(e.to_string()))
    }
}

fn save(path: &str, coo: &Coo<f32>) -> Result<(), String> {
    let err = |e: std::io::Error| format!("writing {path}: {e}");
    if path.ends_with(".mtx") {
        eio::write_matrix_market(std::fs::File::create(path).map_err(err)?, coo).map_err(err)
    } else if path.ends_with(".esnt") {
        std::fs::write(path, eio::write_binary(&Csr::from_coo(coo))).map_err(err)
    } else {
        eio::write_edge_list(std::fs::File::create(path).map_err(err)?, coo).map_err(err)
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let family = args.first().ok_or("generate: missing family")?;
    let out = flag(args, "-o").ok_or("generate: missing -o <file>")?;
    let seed: u64 = match flag(args, "--seed") {
        Some(s) => parse(s, "seed")?,
        None => 42,
    };
    let p = |i: usize| -> Result<usize, String> {
        parse(
            args.get(i)
                .ok_or(format!("generate {family}: missing parameter {i}"))?,
            "parameter",
        )
    };
    let coo: Coo<()> = match family.as_str() {
        "rmat" => gen::rmat(p(1)? as u32, p(2)?, gen::RmatParams::default(), seed),
        "grid" => gen::grid2d(p(1)?, p(2)?),
        "gnm" => gen::gnm(p(1)?, p(2)?, seed),
        "ws" => {
            let beta: f64 = parse(args.get(3).ok_or("ws: missing beta")?, "beta")?;
            gen::watts_strogatz(p(1)?, p(2)?, beta, seed)
        }
        "ba" => gen::barabasi_albert(p(1)?, p(2)?, seed),
        other => return Err(format!("unknown family '{other}'")),
    };
    let weighted = match flag(args, "--weights") {
        Some(range) => {
            let (lo, hi) = range.split_once("..").ok_or("--weights wants LO..HI")?;
            gen::hash_weights(&coo, parse(lo, "weight")?, parse(hi, "weight")?, seed)
        }
        None => gen::unit_weights(&coo),
    };
    save(out, &weighted)?;
    println!(
        "wrote {out}: {} vertices, {} edges",
        weighted.num_vertices(),
        weighted.num_edges()
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats: missing file")?;
    let coo = load(path)?;
    let csr = Csr::from_coo(&coo);
    let d = essentials::graph::properties::degree_stats(&csr);
    println!("file:        {path}");
    println!("vertices:    {}", csr.num_vertices());
    println!("edges:       {}", csr.num_edges());
    println!(
        "degree:      min {} / median {} / mean {:.2} / max {} (skew {:.1})",
        d.min, d.median, d.mean, d.max, d.skew
    );
    println!(
        "self-loops:  {}",
        essentials::graph::properties::count_self_loops(&csr)
    );
    println!(
        "symmetric:   {}",
        essentials::graph::properties::is_symmetric(&csr)
    );
    Ok(())
}

fn convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("convert: want <in> <out>".into());
    };
    let coo = load(input)?;
    save(output, &coo)?;
    println!("converted {input} -> {output} ({} edges)", coo.num_edges());
    Ok(())
}

fn source_of(args: &[String]) -> Result<VertexId, String> {
    match flag(args, "--source") {
        Some(s) => parse(s, "source"),
        None => Ok(0),
    }
}

fn run_bfs(args: &[String]) -> Result<(), String> {
    let g = Graph::from_coo(&load(args.first().ok_or("bfs: missing file")?)?);
    let ctx = Context::default();
    let source = source_of(args)?;
    let r = bfs::bfs(execution::par, &ctx, &g, source);
    let reached = r.level.iter().filter(|&&l| l != bfs::UNVISITED).count();
    let depth = r
        .level
        .iter()
        .filter(|&&l| l != bfs::UNVISITED)
        .max()
        .unwrap_or(&0);
    println!(
        "bfs from {source}: reached {reached}/{} vertices, depth {depth}, {} iterations, {} edges inspected",
        g.get_num_vertices(),
        r.stats.iterations,
        r.edges_inspected
    );
    Ok(())
}

fn run_sssp(args: &[String]) -> Result<(), String> {
    let g = Graph::from_coo(&load(args.first().ok_or("sssp: missing file")?)?);
    let ctx = Context::default();
    let source = source_of(args)?;
    let mode = flag(args, "--mode").unwrap_or("bsp");
    let r = match mode {
        "bsp" => sssp::sssp(execution::par, &ctx, &g, source),
        "async" => sssp::sssp_async(&ctx, &g, source),
        "delta" => sssp::delta_stepping(execution::par, &ctx, &g, source, 2.0),
        other => return Err(format!("unknown sssp mode '{other}'")),
    };
    let reached = r.dist.iter().filter(|d| d.is_finite()).count();
    let max = r
        .dist
        .iter()
        .filter(|d| d.is_finite())
        .fold(0.0f32, |a, &b| a.max(b));
    println!(
        "sssp[{mode}] from {source}: reached {reached}/{}, max distance {max:.3}, {} relaxations",
        g.get_num_vertices(),
        r.relaxations
    );
    Ok(())
}

fn run_pagerank(args: &[String]) -> Result<(), String> {
    let g = Graph::from_coo(&load(args.first().ok_or("pagerank: missing file")?)?).with_csc();
    let ctx = Context::default();
    let mut cfg = pagerank::PrConfig::default();
    if let Some(iters) = flag(args, "--iters") {
        cfg.max_iterations = parse(iters, "iters")?;
    }
    let r = pagerank::pagerank_pull(execution::par, &ctx, &g, cfg);
    let mut top: Vec<(usize, f64)> = r.rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "pagerank: converged in {} iterations (err {:.2e})",
        r.stats.iterations, r.final_error
    );
    for (v, score) in top.iter().take(5) {
        println!("  v{v:<8} {score:.6}");
    }
    Ok(())
}

fn run_cc(args: &[String]) -> Result<(), String> {
    let coo = load(args.first().ok_or("cc: missing file")?)?;
    let g = GraphBuilder::from_coo(coo)
        .symmetrize()
        .deduplicate()
        .build();
    let ctx = Context::default();
    let r = cc::cc_label_propagation(execution::par, &ctx, &g);
    let mut sizes: std::collections::HashMap<VertexId, usize> = Default::default();
    for &c in &r.comp {
        *sizes.entry(c).or_default() += 1;
    }
    let largest = sizes.values().max().copied().unwrap_or(0);
    println!(
        "cc: {} components, largest {} ({:.1}%)",
        sizes.len(),
        largest,
        100.0 * largest as f64 / r.comp.len().max(1) as f64
    );
    Ok(())
}

fn run_tc(args: &[String]) -> Result<(), String> {
    let coo = load(args.first().ok_or("tc: missing file")?)?;
    let g = GraphBuilder::from_coo(coo)
        .remove_self_loops()
        .symmetrize()
        .deduplicate()
        .build();
    let ctx = Context::default();
    let r = tc::triangle_count(execution::par, &ctx, &g, true);
    println!("tc: {} triangles", r.triangles);
    Ok(())
}

fn run_partition(args: &[String]) -> Result<(), String> {
    let coo = load(args.first().ok_or("partition: missing file")?)?;
    let g = GraphBuilder::from_coo(coo)
        .symmetrize()
        .deduplicate()
        .build();
    let k: usize = parse(flag(args, "-k").ok_or("partition: missing -k")?, "k")?;
    let p = multilevel_partition(&g, MultilevelConfig::new(k));
    println!(
        "partition k={k}: edge-cut {} / {} edges, balance {:.3}, sizes {:?}",
        edge_cut(&g, &p),
        g.get_num_edges(),
        balance(&p),
        p.part_sizes()
    );
    Ok(())
}
