//! `essentials` — facade crate re-exporting the full essentials-rs workspace.
//!
//! A CPU-parallel Rust reproduction of *Essentials of Parallel Graph
//! Analytics* (Osama, Porumbescu, Owens; 2022). See the README for the
//! architecture overview and DESIGN.md for the paper-to-code mapping.

pub use essentials_algos as algos;
pub use essentials_core as core;
pub use essentials_frontier as frontier;
pub use essentials_gen as gen;
pub use essentials_graph as graph;
pub use essentials_io as io;
pub use essentials_mp as mp;
pub use essentials_parallel as parallel;
pub use essentials_partition as partition;
pub use essentials_serve as serve;

/// Convenience prelude: the names needed by a typical application.
pub mod prelude {
    pub use essentials_core::prelude::*;
}
