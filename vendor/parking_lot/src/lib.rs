//! Minimal in-tree stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the parking_lot API the workspace uses — `Mutex` with
//! non-poisoning `lock()`, `MutexGuard`, and `Condvar::wait(&mut guard)` —
//! implemented over `std::sync`. Poisoning is swallowed (parking_lot has no
//! poisoning; operator bodies are documented not to panic anyway).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar::wait`]
/// temporarily take the underlying std guard by value.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken during wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting and
    /// reacquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
