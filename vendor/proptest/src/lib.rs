//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace's
//! property tests run on this harness instead: the same `proptest!` surface
//! syntax (strategies, `prop_map`/`prop_flat_map`, `prop::collection::vec`,
//! `Just`, `prop_oneof!`, `prop_assert*`), executed as a deterministic loop
//! of N random cases seeded from the test name. No shrinking — a failing
//! case reports its case index and panics, which is enough to reproduce
//! (the stream is deterministic per test).

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic per-test generator (used by the `proptest!`
/// macro; seeded from the test name so every run replays the same stream).
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a new strategy from it, and draws from
    /// that (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // Avoid overflow: sample [lo-1, hi) and shift.
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Vector of `size`-range length with `element`-generated entries.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the surface syntax needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (reports the failing expression).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ { $cfg } $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ { $crate::ProptestConfig::default() } $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ({ $cfg:expr } ) => {};
    ({ $cfg:expr }
     $(#[$meta:meta])*
     fn $name:ident($($arg:tt in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::deterministic_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }));
                if let Err(e) = result {
                    eprintln!(
                        "proptest case {case}/{} failed for {}",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_impl!{ { $cfg } $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0..n).prop_map(|(n, k)| (n, k)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 1u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..100, 2..30)) {
            prop_assert!(v.len() >= 2 && v.len() < 30);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_dependent_values((n, k) in arb_pair()) {
            prop_assert!(k < n);
        }

        #[test]
        fn oneof_picks_all_arms(x in prop_oneof![Just(1usize), Just(2), 5usize..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::Strategy;
        let mut a = crate::deterministic_rng("t");
        let mut b = crate::deterministic_rng("t");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
