//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so `cargo bench` runs on
//! this harness instead: same surface (`Criterion::benchmark_group`,
//! `sample_size`/`warm_up_time`/`measurement_time`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `criterion_group!`/
//! `criterion_main!`), measuring wall-clock time per iteration and printing
//! min/median/mean per benchmark. No statistical regression analysis or
//! HTML reports.
//!
//! Under `cargo bench` cargo passes `--bench` to harness-less executables;
//! without that flag (e.g. `cargo test` smoke-running the target) each
//! benchmark body executes once so the suite stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle; hands out benchmark groups.
pub struct Criterion {
    full_run: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let full_run = std::env::args().any(|a| a == "--bench");
        Criterion { full_run }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            full_run: self.full_run,
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            _criterion: std::marker::PhantomData,
        }
    }
}

/// Benchmark id combining a function name and a parameter (`name/param`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    full_run: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sampling time budget (sampling stops early once spent).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut b = Bencher {
            full_run: self.full_run,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are already printed per benchmark).
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    full_run: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `f`, storing one wall-clock sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.full_run {
            // Smoke mode (no --bench flag): execute once, record nothing.
            black_box(f());
            return;
        }
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.measurement_time;
        for done in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if done + 1 >= 3 && Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if !self.full_run {
            eprintln!("{group}/{id}: ok (smoke)");
            return;
        }
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples");
            return;
        }
        self.samples.sort_unstable();
        let n = self.samples.len();
        let min = self.samples[0];
        let median = self.samples[n / 2];
        let mean = self.samples.iter().sum::<Duration>() / n as u32;
        eprintln!(
            "{group}/{id}: min {} / median {} / mean {} ({n} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions under one name for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        // Test binaries don't get --bench, so full_run is false.
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0;
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("scan", 8).0, "scan/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn full_run_collects_samples() {
        let mut b = Bencher {
            full_run: true,
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(50),
            samples: Vec::new(),
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.samples.len() >= 3);
    }
}
