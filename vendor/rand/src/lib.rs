//! Minimal in-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the deterministic graph
//! generators get their randomness from this crate instead: a xoshiro256++
//! generator seeded via SplitMix64, exposed through the `rand 0.8` names the
//! workspace uses (`rngs::StdRng`, `Rng::gen`/`gen_range`, `SeedableRng::
//! seed_from_u64`, `seq::SliceRandom::shuffle`). Streams differ from the
//! real rand crate — generator seeds produce *a* deterministic graph, not
//! the same graph rand 0.8 produced — which the test suite never relies on.

use std::ops::Range;

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes graph generators use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Types producible from raw generator output via `Rng::gen`.
pub trait Standard: Sized {
    /// Produces a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize);

/// The user-facing sampling interface (rand 0.8 `Rng` subset).
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`rng.gen::<f64>()` and friends).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// True with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a 64-bit seed (rand 0.8 `SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under rand's small-footprint name.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Slice shuffling/choosing (rand 0.8 `SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(usize::sample_range(rng, 0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
