//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Provides `Bytes`/`BytesMut` as thin `Vec<u8>` wrappers plus the
//! little-endian `Buf`/`BufMut` accessors the binary graph codec uses. No
//! refcounted zero-copy slicing — the codec reads from plain `&[u8]` and
//! writes linearly, so none is needed.

use std::ops::Deref;

/// Immutable byte buffer (Vec-backed; no sharing).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer for linear writes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Linear little-endian write access.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32`, little-endian.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Linear little-endian read access with an advancing cursor.
///
/// Reads past the end panic (as in the real crate); callers bounds-check
/// with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a `u32`, little-endian, advancing.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a `u64`, little-endian, advancing.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads an `f32`, little-endian, advancing.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_slice(b"hdr!");
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.5);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 20);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr!");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
